//! A greedy decomposition heuristic: min-fill elimination ordering to build
//! a tree decomposition, then a greedy set-cover of each bag by atoms.
//!
//! [`crate::decompose`] is exact but exponential in the query size; this
//! heuristic is polynomial and returns a valid (generalized) hypertree
//! decomposition whose width may exceed the optimum. Useful for large
//! cyclic queries where `det-k-decomp` stalls, and as an upper-bounding
//! companion: `greedy_width ≥ htw ≥ ghtw`.

use crate::{Hypergraph, Hypertree};
use pqe_query::{ConjunctiveQuery, Var};
use std::collections::{BTreeMap, BTreeSet};

/// Builds a decomposition with the min-fill heuristic. Returns `None` only
/// for the empty query (use [`crate::decompose`] which handles it).
pub fn greedy_decompose(q: &ConjunctiveQuery) -> Option<Hypertree> {
    if q.is_empty() {
        return None;
    }
    let h = Hypergraph::of_query(q);
    let vars: Vec<Var> = h.vertices().into_iter().collect();
    if vars.is_empty() {
        // Only variable-free atoms: a single bag holding all of them.
        return Some(Hypertree::singleton(
            BTreeSet::new(),
            (0..q.len()).collect(),
        ));
    }

    // Primal graph: variables adjacent when they co-occur in an atom.
    let mut adj: BTreeMap<Var, BTreeSet<Var>> = vars.iter().map(|&v| (v, BTreeSet::new())).collect();
    for i in 0..h.num_edges() {
        let e = h.edge(i);
        for &a in e {
            for &b in e {
                if a != b {
                    adj.get_mut(&a).unwrap().insert(b);
                }
            }
        }
    }

    // Min-fill elimination: repeatedly eliminate the variable whose
    // neighbourhood needs the fewest fill edges, recording its bag.
    let mut remaining: BTreeSet<Var> = vars.iter().copied().collect();
    let mut bags: Vec<BTreeSet<Var>> = Vec::new(); // elimination order
    while let Some(&v) = remaining
        .iter()
        .min_by_key(|&&v| fill_cost(&adj, v))
    {
        let neighbours: BTreeSet<Var> = adj[&v].clone();
        let mut bag = neighbours.clone();
        bag.insert(v);
        bags.push(bag);
        // Connect the neighbours (clique) and remove v.
        for &a in &neighbours {
            for &b in &neighbours {
                if a != b {
                    adj.get_mut(&a).unwrap().insert(b);
                }
            }
            adj.get_mut(&a).unwrap().remove(&v);
        }
        adj.remove(&v);
        remaining.remove(&v);
    }

    // Assemble the tree: attach each bag (in reverse elimination order) to
    // the first later bag containing all its non-eliminated variables —
    // the standard clique-tree construction, guaranteeing the running
    // intersection property.
    let n = bags.len();
    let mut tree = Hypertree::singleton(bags[n - 1].clone(), BTreeSet::new());
    let mut node_of = vec![None; n];
    node_of[n - 1] = Some(tree.root());
    for i in (0..n - 1).rev() {
        // v_i was eliminated at step i; its bag minus v_i must appear in a
        // later bag (clique property). Attach below the earliest such bag.
        let eliminated: BTreeSet<Var> = bags[i]
            .iter()
            .copied()
            .filter(|v| bags[i + 1..].iter().any(|b| b.contains(v)))
            .collect();
        let parent_idx = (i + 1..n)
            .find(|&j| eliminated.is_subset(&bags[j]))
            .unwrap_or(n - 1);
        let parent = node_of[parent_idx].expect("later bags already added");
        let id = tree.add_child(parent, bags[i].clone(), BTreeSet::new());
        node_of[i] = Some(id);
    }

    // Cover each bag's χ with atoms (greedy set cover), establishing
    // condition (3) by intersecting χ with the chosen atoms' variables —
    // every bag variable is covered, so χ is unchanged.
    let order = tree.bfs_order();
    for id in order {
        let chi = tree.node(id).chi.clone();
        let xi = cover_greedily(q, &chi);
        tree.set_xi_internal(id, xi);
    }
    Some(tree)
}

fn fill_cost(adj: &BTreeMap<Var, BTreeSet<Var>>, v: Var) -> usize {
    let ns: Vec<Var> = adj[&v].iter().copied().collect();
    let mut fill = 0;
    for (i, &a) in ns.iter().enumerate() {
        for &b in &ns[i + 1..] {
            if !adj[&a].contains(&b) {
                fill += 1;
            }
        }
    }
    fill
}

/// Greedy set cover of `chi` by atom variable-sets.
fn cover_greedily(q: &ConjunctiveQuery, chi: &BTreeSet<Var>) -> BTreeSet<usize> {
    let mut uncovered: BTreeSet<Var> = chi.clone();
    let mut chosen = BTreeSet::new();
    while !uncovered.is_empty() {
        let (best, gain) = (0..q.len())
            .map(|i| {
                let g = q.atoms()[i]
                    .vars()
                    .intersection(&uncovered)
                    .count();
                (i, g)
            })
            .max_by_key(|&(i, g)| (g, std::cmp::Reverse(i)))
            .expect("non-empty query");
        assert!(gain > 0, "bag variable not covered by any atom");
        chosen.insert(best);
        for v in q.atoms()[best].vars() {
            uncovered.remove(&v);
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{complete, validate};
    use pqe_query::{parse, shapes};

    fn check(q: &ConjunctiveQuery) -> Hypertree {
        let mut t = greedy_decompose(q).expect("non-empty query");
        complete(q, &mut t);
        validate::validate(q, &t).unwrap_or_else(|v| panic!("invalid for {q}: {v}\n{}", t.display(q)));
        assert!(t.is_complete(q));
        t
    }

    #[test]
    fn valid_on_canonical_shapes() {
        for q in [
            shapes::path_query(5),
            shapes::star_query(4),
            shapes::cycle_query(5),
            shapes::triangle_chain(3),
            shapes::clique_query(5),
            shapes::h0_query(),
        ] {
            check(&q);
        }
    }

    #[test]
    fn acyclic_queries_get_small_width() {
        let t = check(&shapes::path_query(6));
        // Min-fill on a path eliminates endpoints first: width stays ≤ 2.
        assert!(t.width() <= 2, "width {}", t.width());
    }

    #[test]
    fn width_upper_bounds_exact() {
        for q in [
            shapes::cycle_query(4),
            shapes::triangle_chain(2),
            parse("A(x,y), B(y,z), C(z,x), D(z,w)").unwrap(),
        ] {
            let exact = crate::decompose(&q).unwrap().width();
            let greedy = check(&q).width();
            assert!(greedy >= exact, "greedy {greedy} < exact {exact} for {q}");
            // Heuristic shouldn't be wildly off on small queries.
            assert!(greedy <= exact + 2, "greedy {greedy} vs exact {exact} for {q}");
        }
    }

    #[test]
    fn variable_free_atoms_are_handled() {
        // Ground atoms only arise internally (after substitution); the
        // heuristic puts them into one bag.
        let q = parse("R(x,y)").unwrap();
        let grounded = q.substitute(pqe_query::Var(0), "a").substitute(pqe_query::Var(1), "b");
        let t = greedy_decompose(&grounded).unwrap();
        assert!(t.is_complete(&grounded));
    }

    #[test]
    fn scales_to_larger_cyclic_queries() {
        // A 12-triangle chain (36 atoms): exact search would crawl; the
        // heuristic is instant and valid.
        let q = shapes::triangle_chain(12);
        let t = check(&q);
        assert!(t.width() <= 3, "width {}", t.width());
    }
}
