//! Abstract syntax of Boolean conjunctive queries.

use std::collections::BTreeSet;
use std::fmt;

/// A query variable, interned within one [`ConjunctiveQuery`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// Raw interner index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A term in an atom: a variable or a constant (by name).
///
/// The paper's queries are constant-free; constants arise internally when
/// the safe-plan baseline substitutes domain values for root variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A query variable.
    Var(Var),
    /// A constant, referenced by its database name.
    Const(String),
}

impl Term {
    /// Returns the variable if this term is one.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }
}

/// An atom `R(t₁, …, t_k)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Relation name (resolved against a database schema at evaluation
    /// time).
    pub relation: String,
    /// Argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(relation: impl Into<String>, terms: Vec<Term>) -> Self {
        Atom {
            relation: relation.into(),
            terms,
        }
    }

    /// `vars(A)`: the set of variables occurring in this atom.
    pub fn vars(&self) -> BTreeSet<Var> {
        self.terms.iter().filter_map(Term::as_var).collect()
    }
}

/// A Boolean conjunctive query `Q = R₁(x̄₁), …, R_n(x̄_n)` (paper §2):
/// an existentially quantified conjunction of atoms.
///
/// `|Q|` is the number of atoms ([`ConjunctiveQuery::len`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    atoms: Vec<Atom>,
    var_names: Vec<String>,
}

impl ConjunctiveQuery {
    /// Builds a query from atoms and the interned variable-name table
    /// (index `i` names `Var(i)`).
    pub fn new(atoms: Vec<Atom>, var_names: Vec<String>) -> Self {
        let q = ConjunctiveQuery { atoms, var_names };
        debug_assert!(q
            .atoms
            .iter()
            .flat_map(|a| a.vars())
            .all(|v| v.index() < q.var_names.len()));
        q
    }

    /// `atoms(Q)` in query order.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// `|Q|`: the number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the query has no atoms (the trivially true query).
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// `vars(Q)`: all variables, in interner order.
    pub fn vars(&self) -> BTreeSet<Var> {
        self.atoms.iter().flat_map(|a| a.vars()).collect()
    }

    /// Number of interned variable names.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// The display name of `v`.
    pub fn var_name(&self, v: Var) -> &str {
        &self.var_names[v.index()]
    }

    /// The interned variable-name table.
    pub fn var_names(&self) -> &[String] {
        &self.var_names
    }

    /// `true` iff no relation name repeats (paper §2: self-join-free).
    pub fn is_self_join_free(&self) -> bool {
        let mut seen = BTreeSet::new();
        self.atoms.iter().all(|a| seen.insert(&a.relation))
    }

    /// `true` iff every term of every atom is a variable (the paper's
    /// constant-free setting).
    pub fn is_constant_free(&self) -> bool {
        self.atoms
            .iter()
            .all(|a| a.terms.iter().all(|t| matches!(t, Term::Var(_))))
    }

    /// A new query with `atom_idx` removed and `var` bound to the constant
    /// `value` everywhere — used by the lifted-inference baseline.
    pub fn substitute(&self, var: Var, value: &str) -> ConjunctiveQuery {
        let atoms = self
            .atoms
            .iter()
            .map(|a| {
                let terms = a
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) if *v == var => Term::Const(value.to_owned()),
                        other => other.clone(),
                    })
                    .collect();
                Atom::new(a.relation.clone(), terms)
            })
            .collect();
        ConjunctiveQuery::new(atoms, self.var_names.clone())
    }

    /// The sub-query consisting of the selected atoms (variable table
    /// shared).
    pub fn restrict_atoms(&self, keep: &[usize]) -> ConjunctiveQuery {
        let atoms = keep.iter().map(|&i| self.atoms[i].clone()).collect();
        ConjunctiveQuery::new(atoms, self.var_names.clone())
    }

    /// The conjunction `self ∧ other`: `other`'s atoms appended, with its
    /// variables re-interned **by name** into `self`'s table — so a
    /// variable named `x` in both queries becomes one joint variable,
    /// exactly as if the two query texts had been parsed as one
    /// comma-separated string. Used by conditional evaluation to form
    /// `Q ∧ E` from a query and its evidence.
    pub fn conjoin(&self, other: &ConjunctiveQuery) -> ConjunctiveQuery {
        let mut var_names = self.var_names.clone();
        let remap: Vec<Var> = other
            .var_names
            .iter()
            .map(|name| match var_names.iter().position(|n| n == name) {
                Some(i) => Var(i as u32),
                None => {
                    var_names.push(name.clone());
                    Var((var_names.len() - 1) as u32)
                }
            })
            .collect();
        let mut atoms = self.atoms.clone();
        atoms.extend(other.atoms.iter().map(|a| {
            let terms = a
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => Term::Var(remap[v.index()]),
                    c @ Term::Const(_) => c.clone(),
                })
                .collect();
            Atom::new(a.relation.clone(), terms)
        }));
        ConjunctiveQuery::new(atoms, var_names)
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for a in &self.atoms {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{}(", a.relation)?;
            let mut first_t = true;
            for t in &a.terms {
                if !first_t {
                    write!(f, ",")?;
                }
                first_t = false;
                match t {
                    Term::Var(v) => write!(f, "{}", self.var_name(*v))?,
                    Term::Const(c) => write!(f, "'{c}'")?,
                }
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q2() -> ConjunctiveQuery {
        // R(x,y), S(y,z)
        ConjunctiveQuery::new(
            vec![
                Atom::new("R", vec![Term::Var(Var(0)), Term::Var(Var(1))]),
                Atom::new("S", vec![Term::Var(Var(1)), Term::Var(Var(2))]),
            ],
            vec!["x".into(), "y".into(), "z".into()],
        )
    }

    #[test]
    fn basic_accessors() {
        let q = q2();
        assert_eq!(q.len(), 2);
        assert_eq!(q.vars().len(), 3);
        assert!(q.is_self_join_free());
        assert!(q.is_constant_free());
        assert_eq!(q.to_string(), "R(x,y), S(y,z)");
    }

    #[test]
    fn self_join_detected() {
        let q = ConjunctiveQuery::new(
            vec![
                Atom::new("R", vec![Term::Var(Var(0)), Term::Var(Var(1))]),
                Atom::new("R", vec![Term::Var(Var(1)), Term::Var(Var(0))]),
            ],
            vec!["x".into(), "y".into()],
        );
        assert!(!q.is_self_join_free());
    }

    #[test]
    fn substitution_binds_everywhere() {
        let q = q2().substitute(Var(1), "b");
        assert_eq!(q.to_string(), "R(x,'b'), S('b',z)");
        assert!(!q.is_constant_free());
        assert_eq!(q.vars().len(), 2);
    }

    #[test]
    fn restrict_atoms_keeps_selection() {
        let q = q2().restrict_atoms(&[1]);
        assert_eq!(q.to_string(), "S(y,z)");
    }

    #[test]
    fn conjoin_unifies_variables_by_name() {
        // T(z,w): z must join with q2's z, w is fresh.
        let other = ConjunctiveQuery::new(
            vec![Atom::new("T", vec![Term::Var(Var(0)), Term::Var(Var(1))])],
            vec!["z".into(), "w".into()],
        );
        let joint = q2().conjoin(&other);
        assert_eq!(joint.to_string(), "R(x,y), S(y,z), T(z,w)");
        // z is shared: 4 distinct variables, not 5.
        assert_eq!(joint.vars().len(), 4);
        assert!(joint.is_self_join_free());
    }

    #[test]
    fn conjoin_matches_parsing_the_concatenation() {
        let a = crate::parse("R(x,y), S(y,z)").unwrap();
        let b = crate::parse("T(z,'c')").unwrap();
        let joint = a.conjoin(&b);
        let parsed = crate::parse("R(x,y), S(y,z), T(z,'c')").unwrap();
        assert_eq!(joint.to_string(), parsed.to_string());
    }
}
