//! Canonical query-shape builders used throughout the experiment suite.
//!
//! Every builder produces a self-join-free query (distinct relation names
//! `R1, R2, …`) unless stated otherwise.

use crate::{Atom, ConjunctiveQuery, Term, Var};

fn var_names(n: usize, prefix: &str) -> Vec<String> {
    (1..=n).map(|i| format!("{prefix}{i}")).collect()
}

/// The length-`n` path query `Q_n = R1(x1,x2), …, Rn(xn,x{n+1})` (paper §2).
///
/// For `n ≥ 3` these form the `3Path` class of Corollary 1: #P-hard in data
/// complexity yet admitting the combined FPRAS (they are acyclic, hence
/// hypertree width 1).
pub fn path_query(n: usize) -> ConjunctiveQuery {
    assert!(n >= 1);
    let atoms = (0..n)
        .map(|i| {
            Atom::new(
                format!("R{}", i + 1),
                vec![Term::Var(Var(i as u32)), Term::Var(Var(i as u32 + 1))],
            )
        })
        .collect();
    ConjunctiveQuery::new(atoms, var_names(n + 1, "x"))
}

/// The `k`-arm star query `R1(x,y1), …, Rk(x,yk)` — hierarchical (safe),
/// acyclic: the poster child of Table 1 row 1.
pub fn star_query(k: usize) -> ConjunctiveQuery {
    assert!(k >= 1);
    let mut names = vec!["x".to_owned()];
    names.extend(var_names(k, "y"));
    let atoms = (0..k)
        .map(|i| {
            Atom::new(
                format!("R{}", i + 1),
                vec![Term::Var(Var(0)), Term::Var(Var(i as u32 + 1))],
            )
        })
        .collect();
    ConjunctiveQuery::new(atoms, names)
}

/// The length-`n` cycle query `R1(x1,x2), …, Rn(xn,x1)` (`n ≥ 3`):
/// hypertree width 2, self-join-free, non-hierarchical.
pub fn cycle_query(n: usize) -> ConjunctiveQuery {
    assert!(n >= 3);
    let atoms = (0..n)
        .map(|i| {
            Atom::new(
                format!("R{}", i + 1),
                vec![
                    Term::Var(Var(i as u32)),
                    Term::Var(Var(((i + 1) % n) as u32)),
                ],
            )
        })
        .collect();
    ConjunctiveQuery::new(atoms, var_names(n, "x"))
}

/// The `k`-clique query: one binary atom `Rij(xi,xj)` per unordered pair.
/// Hypertree width grows with `k` — the "unbounded hypertree width" rows of
/// Table 1 (marked Open in combined complexity).
pub fn clique_query(k: usize) -> ConjunctiveQuery {
    assert!(k >= 2);
    let mut atoms = Vec::new();
    for i in 0..k {
        for j in (i + 1)..k {
            atoms.push(Atom::new(
                format!("R{}_{}", i + 1, j + 1),
                vec![Term::Var(Var(i as u32)), Term::Var(Var(j as u32))],
            ));
        }
    }
    ConjunctiveQuery::new(atoms, var_names(k, "x"))
}

/// A *self-join* path query `R(x1,x2), R(x2,x3), …` — same relation symbol
/// throughout. Outside the FPRAS's scope (Table 1 bottom row).
pub fn self_join_path(n: usize) -> ConjunctiveQuery {
    assert!(n >= 1);
    let atoms = (0..n)
        .map(|i| {
            Atom::new(
                "R",
                vec![Term::Var(Var(i as u32)), Term::Var(Var(i as u32 + 1))],
            )
        })
        .collect();
    ConjunctiveQuery::new(atoms, var_names(n + 1, "x"))
}

/// A chain of `n` triangles sharing corner variables: hypertree width 2 for
/// every `n`, so the class `{triangle_chain(n)}` has *bounded* width while
/// being cyclic — exercises the width-2 code paths end to end.
pub fn triangle_chain(n: usize) -> ConjunctiveQuery {
    assert!(n >= 1);
    // Triangle i has corners v_{2i}, v_{2i+1}, v_{2i+2}; consecutive
    // triangles share corner v_{2i+2}.
    let mut atoms = Vec::new();
    for i in 0..n {
        let a = Var(2 * i as u32);
        let b = Var(2 * i as u32 + 1);
        let c = Var(2 * i as u32 + 2);
        atoms.push(Atom::new(format!("A{}", i + 1), vec![Term::Var(a), Term::Var(b)]));
        atoms.push(Atom::new(format!("B{}", i + 1), vec![Term::Var(b), Term::Var(c)]));
        atoms.push(Atom::new(format!("C{}", i + 1), vec![Term::Var(a), Term::Var(c)]));
    }
    ConjunctiveQuery::new(atoms, var_names(2 * n + 1, "v"))
}

/// The canonical unsafe (non-hierarchical) query of Dalvi–Suciu:
/// `H0 = R(x), S(x,y), T(y)` — acyclic (width 1), self-join-free, #P-hard.
pub fn h0_query() -> ConjunctiveQuery {
    ConjunctiveQuery::new(
        vec![
            Atom::new("R", vec![Term::Var(Var(0))]),
            Atom::new("S", vec![Term::Var(Var(0)), Term::Var(Var(1))]),
            Atom::new("T", vec![Term::Var(Var(1))]),
        ],
        vec!["x".into(), "y".into()],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn path_query_shape() {
        let q = path_query(4);
        assert_eq!(q.len(), 4);
        assert!(q.is_self_join_free());
        assert!(analysis::as_path_query(&q).is_some());
        assert!(analysis::in_three_path_class(&q));
        assert_eq!(q.to_string(), "R1(x1,x2), R2(x2,x3), R3(x3,x4), R4(x4,x5)");
    }

    #[test]
    fn star_is_hierarchical() {
        let q = star_query(3);
        assert!(analysis::is_hierarchical(&q));
        assert!(q.is_self_join_free());
    }

    #[test]
    fn cycle_shares_first_and_last() {
        let q = cycle_query(3);
        assert_eq!(q.len(), 3);
        assert!(analysis::as_path_query(&q).is_none());
        assert!(!analysis::is_hierarchical(&q));
    }

    #[test]
    fn clique_atom_count() {
        assert_eq!(clique_query(4).len(), 6);
        assert!(clique_query(4).is_self_join_free());
    }

    #[test]
    fn self_join_path_repeats_relation() {
        let q = self_join_path(3);
        assert!(!q.is_self_join_free());
        assert!(analysis::as_path_query(&q).is_some());
    }

    #[test]
    fn triangle_chain_shape() {
        let q = triangle_chain(2);
        assert_eq!(q.len(), 6);
        assert!(q.is_self_join_free());
        assert!(!analysis::is_hierarchical(&q));
    }

    #[test]
    fn h0_is_the_canonical_unsafe_query() {
        let q = h0_query();
        assert!(q.is_self_join_free());
        assert!(!analysis::is_hierarchical(&q));
    }
}
