//! A small parser for conjunctive queries.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query  := [ "Q" ":-" ] atom ( "," atom )*
//! atom   := IDENT "(" term ( "," term )* ")"
//! term   := IDENT            // a variable
//!         | "'" chars "'"    // a constant
//!         | NUMBER           // a constant
//! ```
//!
//! Identifiers are `[A-Za-z_][A-Za-z0-9_]*`. Following the paper, plain
//! identifiers in argument position are variables; constants must be quoted
//! or numeric.

use crate::{Atom, ConjunctiveQuery, Term, Var};
use std::collections::HashMap;

/// Error produced by [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset of the error in the input.
    pub position: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
    vars: HashMap<String, Var>,
    var_names: Vec<String>,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            position: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if !c.is_whitespace() {
                break;
            }
            self.pos += c.len_utf8();
        }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), ParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            self.err(format!("expected {c:?}"))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        match self.peek() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
            _ => return self.err("expected identifier"),
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            self.pos += 1;
        }
        Ok(self.src[start..self.pos].to_owned())
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some('\'') => {
                self.pos += 1;
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == '\'' {
                        break;
                    }
                    self.pos += c.len_utf8();
                }
                if self.peek().is_none() {
                    return self.err("unterminated constant literal");
                }
                let name = self.src[start..self.pos].to_owned();
                self.pos += 1; // closing quote
                Ok(Term::Const(name))
            }
            Some(c) if c.is_ascii_digit() => {
                let start = self.pos;
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.pos += 1;
                }
                Ok(Term::Const(self.src[start..self.pos].to_owned()))
            }
            _ => {
                let name = self.ident()?;
                let next = self.vars.len() as u32;
                let v = *self.vars.entry(name.clone()).or_insert_with(|| {
                    self.var_names.push(name);
                    Var(next)
                });
                Ok(Term::Var(v))
            }
        }
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        self.skip_ws();
        let rel = self.ident()?;
        self.skip_ws();
        self.expect('(')?;
        let mut terms = vec![self.term()?];
        loop {
            self.skip_ws();
            if self.eat(',') {
                terms.push(self.term()?);
            } else {
                break;
            }
        }
        self.skip_ws();
        self.expect(')')?;
        Ok(Atom::new(rel, terms))
    }

    fn query(&mut self) -> Result<ConjunctiveQuery, ParseError> {
        self.skip_ws();
        // Optional "Q :-" / "IDENT :-" head.
        let save = self.pos;
        if let Ok(_head) = self.ident() {
            self.skip_ws();
            if self.src[self.pos..].starts_with(":-") {
                self.pos += 2;
            } else {
                self.pos = save;
            }
        }
        let mut atoms = vec![self.atom()?];
        loop {
            self.skip_ws();
            if self.eat(',') {
                atoms.push(self.atom()?);
            } else {
                break;
            }
        }
        self.skip_ws();
        if self.eat('.') {
            self.skip_ws();
        }
        if self.pos != self.src.len() {
            return self.err("trailing input after query");
        }
        Ok(ConjunctiveQuery::new(
            atoms,
            std::mem::take(&mut self.var_names),
        ))
    }
}

/// Parses a Boolean conjunctive query.
///
/// ```
/// let q = pqe_query::parse("Q :- R(x,y), S(y,'paris')").unwrap();
/// assert_eq!(q.len(), 2);
/// assert_eq!(q.to_string(), "R(x,y), S(y,'paris')");
/// ```
pub fn parse(src: &str) -> Result<ConjunctiveQuery, ParseError> {
    let mut p = Parser {
        src,
        pos: 0,
        vars: HashMap::new(),
        var_names: Vec::new(),
    };
    p.query()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_query() {
        let q = parse("R(x,y), S(y,z)").unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.num_vars(), 3);
        assert_eq!(q.to_string(), "R(x,y), S(y,z)");
    }

    #[test]
    fn shared_variables_are_identified() {
        let q = parse("R(x,y), S(y,x)").unwrap();
        assert_eq!(q.num_vars(), 2);
        assert_eq!(q.atoms()[0].terms[0], q.atoms()[1].terms[1]);
    }

    #[test]
    fn optional_head_and_trailing_dot() {
        let q = parse("Q :- R(x,y), S(y,z).").unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn constants_quoted_and_numeric() {
        let q = parse("R(x,'alice'), S(x, 42)").unwrap();
        assert_eq!(q.num_vars(), 1);
        assert_eq!(q.to_string(), "R(x,'alice'), S(x,'42')");
        assert!(!q.is_constant_free());
    }

    #[test]
    fn whitespace_insensitive() {
        let q = parse("  R ( x , y ) ,\n S( y ,z )  ").unwrap();
        assert_eq!(q.to_string(), "R(x,y), S(y,z)");
    }

    #[test]
    fn error_reporting() {
        assert!(parse("").is_err());
        assert!(parse("R(x").is_err());
        assert!(parse("R(x,y) garbage").is_err());
        assert!(parse("R(x,'unterminated)").is_err());
        let e = parse("R()").unwrap_err();
        assert!(e.message.contains("identifier"), "{e}");
    }

    #[test]
    fn display_roundtrips() {
        for s in [
            "R(x,y), S(y,z)",
            "R1(x1,x2), R2(x2,x3), R3(x3,x4)",
            "T(a,b,c), U(c)",
        ] {
            let q = parse(s).unwrap();
            assert_eq!(parse(&q.to_string()).unwrap(), q);
        }
    }
}
