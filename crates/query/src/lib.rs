#![warn(missing_docs)]

//! # pqe-query — conjunctive queries and their classification
//!
//! Implements the query model of §2 of van Bremen & Meel (PODS 2023):
//! Boolean conjunctive queries `Q = R₁(x̄₁), …, R_n(x̄_n)`, together with the
//! syntactic classification axes of the paper's Table 1:
//!
//! * **self-join-freeness** — no repeated relation symbols
//!   ([`ConjunctiveQuery::is_self_join_free`]);
//! * **hierarchy** — the Dalvi–Suciu condition equivalent to safety for
//!   self-join-free CQs ([`analysis::is_hierarchical`]);
//! * **path queries** — the warm-up class of §3 ([`analysis::as_path_query`]).
//!
//! Bounded hypertree width, the third axis, lives in `pqe-hypertree`.
//!
//! ```
//! use pqe_query::{parse, analysis};
//! let q = parse("R1(x1,x2), R2(x2,x3), R3(x3,x4)").unwrap();
//! assert!(q.is_self_join_free());
//! assert!(analysis::as_path_query(&q).is_some());
//! assert!(!analysis::is_hierarchical(&q)); // non-hierarchical ⇒ #P-hard PQE
//! ```

pub mod analysis;
mod ast;
mod parser;
pub mod shapes;

pub use ast::{Atom, ConjunctiveQuery, Term, Var};
pub use parser::{parse, ParseError};
