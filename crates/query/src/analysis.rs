//! Structural analysis of conjunctive queries: the classification axes of
//! the paper's Table 1 (minus hypertree width, which lives in
//! `pqe-hypertree`).

use crate::{ConjunctiveQuery, Var};
use std::collections::{BTreeMap, BTreeSet};

/// `at(x)`: for each variable, the set of atom indices it occurs in.
pub fn atom_sets(q: &ConjunctiveQuery) -> BTreeMap<Var, BTreeSet<usize>> {
    let mut m: BTreeMap<Var, BTreeSet<usize>> = BTreeMap::new();
    for (i, a) in q.atoms().iter().enumerate() {
        for v in a.vars() {
            m.entry(v).or_default().insert(i);
        }
    }
    m
}

/// Whether `Q` is *hierarchical*: for every pair of variables `x, y`, the
/// atom sets `at(x)` and `at(y)` are disjoint or one contains the other.
///
/// For self-join-free Boolean CQs this is exactly the Dalvi–Suciu *safety*
/// condition: hierarchical ⇔ PQE in FP, non-hierarchical ⇔ #P-hard (the
/// "Safe?" column of Table 1). In particular every query of the `3Path`
/// class (§1.1) is non-hierarchical.
pub fn is_hierarchical(q: &ConjunctiveQuery) -> bool {
    let sets: Vec<BTreeSet<usize>> = atom_sets(q).into_values().collect();
    for (i, a) in sets.iter().enumerate() {
        for b in sets.iter().skip(i + 1) {
            let disjoint = a.is_disjoint(b);
            let nested = a.is_subset(b) || b.is_subset(a);
            if !disjoint && !nested {
                return false;
            }
        }
    }
    true
}

/// Decomposes `Q` into connected components: atoms are connected when they
/// share a variable. Returns atom-index groups in first-occurrence order.
///
/// Independent components have independent probabilities, which the lifted
/// (safe-plan) baseline exploits as an independent join.
pub fn connected_components(q: &ConjunctiveQuery) -> Vec<Vec<usize>> {
    let n = q.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let r = find(parent, parent[i]);
            parent[i] = r;
        }
        parent[i]
    }
    for set in atom_sets(q).values() {
        let mut it = set.iter();
        if let Some(&first) = it.next() {
            for &other in it {
                let (a, b) = (find(&mut parent, first), find(&mut parent, other));
                if a != b {
                    parent[a] = b;
                }
            }
        }
    }
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..n {
        let r = find(&mut parent, i);
        groups.entry(r).or_default().push(i);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    out.sort_by_key(|g| g[0]);
    out
}

/// Variables occurring in *every* atom of `Q` ("root variables").
///
/// A non-empty result enables the independent-project step of lifted
/// inference.
pub fn root_variables(q: &ConjunctiveQuery) -> Vec<Var> {
    let n = q.len();
    atom_sets(q)
        .into_iter()
        .filter(|(_, s)| s.len() == n)
        .map(|(v, _)| v)
        .collect()
}

/// If `Q` is a path query `R₁(x₁,x₂), R₂(x₂,x₃), …, R_n(x_n,x_{n+1})`
/// (paper §2) — all atoms binary, consecutive atoms chained on a fresh
/// variable, all `x_i` distinct — returns the chain variables
/// `[x₁, …, x_{n+1}]`.
pub fn as_path_query(q: &ConjunctiveQuery) -> Option<Vec<Var>> {
    if q.is_empty() {
        return None;
    }
    let mut chain: Vec<Var> = Vec::with_capacity(q.len() + 1);
    for (i, a) in q.atoms().iter().enumerate() {
        if a.terms.len() != 2 {
            return None;
        }
        let x = a.terms[0].as_var()?;
        let y = a.terms[1].as_var()?;
        if i == 0 {
            chain.push(x);
        } else if *chain.last().unwrap() != x {
            return None;
        }
        chain.push(y);
    }
    // All chain variables pairwise distinct (a genuine path, not a cycle).
    let distinct: BTreeSet<Var> = chain.iter().copied().collect();
    (distinct.len() == chain.len()).then_some(chain)
}

/// Whether `Q` belongs to the `3Path` class of Corollary 1: a self-join-free
/// path query of length at least 3 (hence #P-hard in data complexity, yet
/// covered by the combined FPRAS).
pub fn in_three_path_class(q: &ConjunctiveQuery) -> bool {
    q.len() >= 3 && q.is_self_join_free() && as_path_query(q).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn atom_sets_indexing() {
        let q = parse("R(x,y), S(y,z)").unwrap();
        let m = atom_sets(&q);
        assert_eq!(m.len(), 3);
        let y = *m
            .iter()
            .find(|(v, _)| q.var_name(**v) == "y")
            .unwrap()
            .0;
        assert_eq!(m[&y].len(), 2);
    }

    #[test]
    fn hierarchical_star_query() {
        // x occurs in all atoms; each y_i in exactly one: hierarchical.
        let q = parse("R1(x,y1), R2(x,y2), R3(x,y3)").unwrap();
        assert!(is_hierarchical(&q));
        assert_eq!(root_variables(&q).len(), 1);
    }

    #[test]
    fn non_hierarchical_two_path() {
        // at(x) = {0}, at(y) = {0,1}, at(z) = {1}: x vs z fine, but
        // at(x) and at(z) vs at(y) nest... R(x,y),S(y,z) IS hierarchical.
        let q = parse("R(x,y), S(y,z)").unwrap();
        assert!(is_hierarchical(&q));
        // The canonical unsafe query: R(x), S(x,y), T(y).
        let q = parse("R(x), S(x,y), T(y)").unwrap();
        assert!(!is_hierarchical(&q));
    }

    #[test]
    fn three_path_is_not_hierarchical() {
        let q = parse("R1(x1,x2), R2(x2,x3), R3(x3,x4)").unwrap();
        assert!(!is_hierarchical(&q));
        assert!(in_three_path_class(&q));
    }

    #[test]
    fn components_split_on_shared_vars() {
        let q = parse("R(x,y), S(y,z), T(u,v)").unwrap();
        let comps = connected_components(&q);
        assert_eq!(comps, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn path_query_recognition() {
        assert!(as_path_query(&parse("R(x,y)").unwrap()).is_some());
        let q = parse("R1(x1,x2), R2(x2,x3)").unwrap();
        let chain = as_path_query(&q).unwrap();
        assert_eq!(chain.len(), 3);
        // Broken chain.
        assert!(as_path_query(&parse("R(x,y), S(z,w)").unwrap()).is_none());
        // Cycle is not a path (repeated variable).
        assert!(as_path_query(&parse("R(x,y), S(y,x)").unwrap()).is_none());
        // Ternary atom is not a path.
        assert!(as_path_query(&parse("R(x,y,z)").unwrap()).is_none());
    }

    #[test]
    fn three_path_class_requires_length_and_sjf() {
        assert!(!in_three_path_class(&parse("R1(x,y), R2(y,z)").unwrap()));
        let self_join = parse("R(x,y), R(y,z), R(z,w)").unwrap();
        assert!(!in_three_path_class(&self_join));
    }
}
