//! Property tests for the query crate: the parser must never panic, must
//! round-trip its own rendering, and the analyses must agree with their
//! definitions on random queries.

use pqe_query::{analysis, parse, Atom, ConjunctiveQuery, Term, Var};
use pqe_testkit::prelude::*;
use pqe_testkit::{arb_string, BoxedGen, Source};

fn cfg() -> Config {
    Config::cases(256).with_corpus("tests/corpus/proptests.corpus")
}

const IDENT_FIRST: &str = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_";
const IDENT_REST: &str = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_";

fn random_query() -> BoxedGen<ConjunctiveQuery> {
    vec((vec(0u32..5, 1..=3), any::<bool>()), 1..=5)
        .prop_map(|atoms_spec| {
            let atoms: Vec<Atom> = atoms_spec
                .into_iter()
                .enumerate()
                .map(|(i, (vars, self_join))| {
                    let rel = if self_join { "R0".to_owned() } else { format!("R{i}") };
                    Atom::new(rel, vars.into_iter().map(|v| Term::Var(Var(v))).collect())
                })
                .collect();
            ConjunctiveQuery::new(atoms, (0..5).map(|i| format!("v{i}")).collect())
        })
        .boxed()
}

/// The corpus hex must decode to the `"\u{a0}"` input the old
/// `proptest-regressions` file pinned.
#[test]
fn corpus_entry_decodes_to_the_pinned_regression() {
    let input = arb_string(0..=60usize).generate(&mut Source::replay(&[0x01, 0xA0, 0, 0, 0]));
    assert_eq!(input, "\u{a0}");
}

#[test]
fn parser_never_panics() {
    check("parser_never_panics", &cfg(), &arb_string(0..=60usize), |input| {
        let _ = parse(input); // Ok or Err, never a panic
        Ok(())
    });
}

#[test]
fn parser_handles_structured_garbage() {
    let rel = (string_from(IDENT_FIRST, 1), string_from(IDENT_REST, 0..=6usize))
        .prop_map(|(head, rest)| head + &rest);
    let args = vec(string_from("abcdefghijklmnopqrstuvwxyz0123456789'", 0..=5usize), 0..4);
    let tail = string_from(",()'. ", 0..=6usize);
    check(
        "parser_handles_structured_garbage",
        &cfg(),
        &(rel, args, tail),
        |(rel, args, tail)| {
            let src = format!("{rel}({}){tail}", args.join(","));
            let _ = parse(&src);
            Ok(())
        },
    );
}

#[test]
fn display_parse_roundtrip() {
    check("display_parse_roundtrip", &cfg(), &random_query(), |q| {
        let rendered = q.to_string();
        let reparsed = parse(&rendered).unwrap();
        // Structural equality up to variable interning: re-render.
        prop_assert_eq!(reparsed.to_string(), rendered);
        prop_assert_eq!(reparsed.len(), q.len());
        prop_assert_eq!(reparsed.is_self_join_free(), q.is_self_join_free());
        Ok(())
    });
}

#[test]
fn hierarchy_matches_definition() {
    check("hierarchy_matches_definition", &cfg(), &random_query(), |q| {
        // Re-check is_hierarchical against the quantified definition.
        let sets = analysis::atom_sets(q);
        let vars: Vec<_> = sets.keys().copied().collect();
        let mut expected = true;
        for (i, x) in vars.iter().enumerate() {
            for y in &vars[i + 1..] {
                let (a, b) = (&sets[x], &sets[y]);
                if !(a.is_disjoint(b) || a.is_subset(b) || b.is_subset(a)) {
                    expected = false;
                }
            }
        }
        prop_assert_eq!(analysis::is_hierarchical(q), expected);
        Ok(())
    });
}

#[test]
fn components_partition_atoms() {
    check("components_partition_atoms", &cfg(), &random_query(), |q| {
        let comps = analysis::connected_components(q);
        let mut all: Vec<usize> = comps.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..q.len()).collect::<Vec<_>>());
        // Atoms in different components share no variables.
        for (i, c1) in comps.iter().enumerate() {
            for c2 in comps.iter().skip(i + 1) {
                for &a in c1 {
                    for &b in c2 {
                        let va = q.atoms()[a].vars();
                        let vb = q.atoms()[b].vars();
                        prop_assert!(va.is_disjoint(&vb));
                    }
                }
            }
        }
        Ok(())
    });
}

#[test]
fn root_variables_occur_everywhere() {
    check("root_variables_occur_everywhere", &cfg(), &random_query(), |q| {
        for v in analysis::root_variables(q) {
            for a in q.atoms() {
                prop_assert!(a.vars().contains(&v));
            }
        }
        Ok(())
    });
}

#[test]
fn substitution_eliminates_the_variable() {
    check("substitution_eliminates_the_variable", &cfg(), &random_query(), |q| {
        let vars = q.vars();
        if let Some(&v) = vars.iter().next() {
            let sub = q.substitute(v, "c0");
            prop_assert!(!sub.vars().contains(&v));
            prop_assert_eq!(sub.len(), q.len());
        }
        Ok(())
    });
}
