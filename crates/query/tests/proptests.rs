//! Property tests for the query crate: the parser must never panic, must
//! round-trip its own rendering, and the analyses must agree with their
//! definitions on random queries.

use proptest::prelude::*;
use pqe_query::{analysis, parse, Atom, ConjunctiveQuery, Term, Var};

fn random_query() -> impl Strategy<Value = ConjunctiveQuery> {
    proptest::collection::vec(
        (proptest::collection::vec(0u32..5, 1..=3), any::<bool>()),
        1..=5,
    )
    .prop_map(|atoms_spec| {
        let atoms: Vec<Atom> = atoms_spec
            .into_iter()
            .enumerate()
            .map(|(i, (vars, self_join))| {
                let rel = if self_join { "R0".to_owned() } else { format!("R{i}") };
                Atom::new(rel, vars.into_iter().map(|v| Term::Var(Var(v))).collect())
            })
            .collect();
        ConjunctiveQuery::new(atoms, (0..5).map(|i| format!("v{i}")).collect())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics(input in ".{0,60}") {
        let _ = parse(&input); // Ok or Err, never a panic
    }

    #[test]
    fn parser_handles_structured_garbage(
        rel in "[A-Za-z_][A-Za-z0-9_]{0,6}",
        args in proptest::collection::vec("[a-z0-9']{0,5}", 0..4),
        tail in "[,()'. ]{0,6}",
    ) {
        let src = format!("{rel}({}){tail}", args.join(","));
        let _ = parse(&src);
    }

    #[test]
    fn display_parse_roundtrip(q in random_query()) {
        let rendered = q.to_string();
        let reparsed = parse(&rendered).unwrap();
        // Structural equality up to variable interning: re-render.
        prop_assert_eq!(reparsed.to_string(), rendered);
        prop_assert_eq!(reparsed.len(), q.len());
        prop_assert_eq!(reparsed.is_self_join_free(), q.is_self_join_free());
    }

    #[test]
    fn hierarchy_matches_definition(q in random_query()) {
        // Re-check is_hierarchical against the quantified definition.
        let sets = analysis::atom_sets(&q);
        let vars: Vec<_> = sets.keys().copied().collect();
        let mut expected = true;
        for (i, x) in vars.iter().enumerate() {
            for y in &vars[i + 1..] {
                let (a, b) = (&sets[x], &sets[y]);
                if !(a.is_disjoint(b) || a.is_subset(b) || b.is_subset(a)) {
                    expected = false;
                }
            }
        }
        prop_assert_eq!(analysis::is_hierarchical(&q), expected);
    }

    #[test]
    fn components_partition_atoms(q in random_query()) {
        let comps = analysis::connected_components(&q);
        let mut all: Vec<usize> = comps.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..q.len()).collect::<Vec<_>>());
        // Atoms in different components share no variables.
        for (i, c1) in comps.iter().enumerate() {
            for c2 in comps.iter().skip(i + 1) {
                for &a in c1 {
                    for &b in c2 {
                        let va = q.atoms()[a].vars();
                        let vb = q.atoms()[b].vars();
                        prop_assert!(va.is_disjoint(&vb));
                    }
                }
            }
        }
    }

    #[test]
    fn root_variables_occur_everywhere(q in random_query()) {
        for v in analysis::root_variables(&q) {
            for a in q.atoms() {
                prop_assert!(a.vars().contains(&v));
            }
        }
    }

    #[test]
    fn substitution_eliminates_the_variable(q in random_query()) {
        let vars = q.vars();
        if let Some(&v) = vars.iter().next() {
            let sub = q.substitute(v, "c0");
            prop_assert!(!sub.vars().contains(&v));
            prop_assert_eq!(sub.len(), q.len());
        }
    }
}
