//! Differential property tests: `FixUint`'s `u128` fast paths must equal
//! the `BigUint` reference bit-for-bit — including the lossy `f64` /
//! `BigFloat` conversions, and exactly at the overflow crossover where the
//! representation spills from `Small` to `Big`.

use pqe_arith::{set_slow_path, BigFloat, BigUint, FixUint};
use pqe_testkit::prelude::*;

fn cfg() -> Config {
    Config::cases(256).with_corpus("tests/corpus/fixuint_differential.corpus")
}

/// Operand generator biased toward the single-limb / overflow boundary:
/// an anchor at a power of two near a representation edge, then a small
/// signed wobble and optional random low bits.
fn boundary_value() -> impl Gen<Value = u128> {
    (0u8..=9, 0u32..2048, any::<u64>()).prop_map(|(anchor, wobble, low)| {
        let base: u128 = match anchor {
            0 => 0,
            1 => 1 << 31,            // single u32 limb edge
            2 => 1 << 52,            // f64 mantissa edge
            3 => 1 << 63,            // BigFloat::from_biguint branch edge
            4 => 1 << 64,            // u64 / two-limb edge
            5 => 1 << 96,            // three-limb edge
            6 => u64::MAX as u128,
            7 => 1 << 120,
            8 => u128::MAX,          // u128 overflow edge
            _ => (low as u128) << 33, // spread across mid-range
        };
        base.wrapping_add(wobble as u128)
            .wrapping_sub(1024)
            .wrapping_add((low & 0xFF) as u128)
    })
}

fn reference(v: u128) -> BigUint {
    BigUint::from(v)
}

#[test]
fn add_matches_biguint_reference() {
    check(
        "fixuint_add_matches_reference",
        &cfg(),
        &(boundary_value(), boundary_value()),
        |&(a, b)| {
            let fix = &FixUint::from_u128(a) + &FixUint::from_u128(b);
            let big = &reference(a) + &reference(b);
            prop_assert_eq!(fix.to_biguint(), big);
            Ok(())
        },
    );
}

#[test]
fn mul_matches_biguint_reference() {
    check(
        "fixuint_mul_matches_reference",
        &cfg(),
        &(boundary_value(), boundary_value()),
        |&(a, b)| {
            let fix = &FixUint::from_u128(a) * &FixUint::from_u128(b);
            let big = &reference(a) * &reference(b);
            prop_assert_eq!(fix.to_biguint(), big);
            Ok(())
        },
    );
}

#[test]
fn lossy_conversions_are_bit_identical() {
    check(
        "fixuint_conversions_bit_identical",
        &cfg(),
        &boundary_value(),
        |&v| {
            let fix = FixUint::from_u128(v);
            let big = reference(v);
            // f64: compare raw bits, not approximate equality.
            prop_assert_eq!(fix.to_f64().to_bits(), big.to_f64().to_bits());
            let bf_fix = fix.to_bigfloat();
            let bf_big = BigFloat::from_biguint(&big);
            prop_assert!(
                bf_fix == bf_big,
                "to_bigfloat({v}): fast {bf_fix} vs reference {bf_big}"
            );
            Ok(())
        },
    );
}

#[test]
fn accumulation_across_the_overflow_crossover() {
    // Chains of adds/muls that cross u128::MAX mid-sequence: once spilled,
    // further fast-path operands must keep agreeing with the reference.
    check(
        "fixuint_accumulation_crossover",
        &cfg(),
        &vec((boundary_value(), any::<bool>()), 1..12),
        |ops| {
            let mut fix = FixUint::one();
            let mut big = BigUint::one();
            for &(v, is_mul) in ops {
                let f = FixUint::from_u128(v);
                let b = reference(v);
                if is_mul {
                    fix = &fix * &f;
                    big = &big * &b;
                } else {
                    fix += &f;
                    big += &b;
                }
                prop_assert_eq!(fix.to_biguint(), big.clone());
                prop_assert_eq!(fix.to_f64().to_bits(), big.to_f64().to_bits());
                prop_assert!(fix.to_bigfloat() == BigFloat::from_biguint(&big));
            }
            Ok(())
        },
    );
}

#[test]
fn exact_crossover_values() {
    // The precise values where each conversion branch changes: one below,
    // at, and above every edge.
    let edges: [u128; 5] = [1 << 52, 1 << 53, 1 << 63, 1 << 64, u128::MAX];
    for edge in edges {
        for v in [edge.wrapping_sub(1), edge, edge.wrapping_add(1)] {
            let fix = FixUint::from_u128(v);
            let big = reference(v);
            assert_eq!(fix.to_f64().to_bits(), big.to_f64().to_bits(), "to_f64 at {v}");
            assert!(
                fix.to_bigfloat() == BigFloat::from_biguint(&big),
                "to_bigfloat at {v}"
            );
        }
    }
    // Addition exactly at the u128 overflow crossover.
    let just_over = &FixUint::from_u128(u128::MAX) + &FixUint::one();
    assert_eq!(just_over.to_biguint(), &BigUint::from(u128::MAX) + &BigUint::one());
    // Multiplication exactly at the crossover: (2^64)·(2^64) overflows,
    // (2^64)·(2^64 − 1) does not.
    let lo = &FixUint::from_u128(1 << 64) * &FixUint::from_u128((1u128 << 64) - 1);
    assert_eq!(lo.to_biguint(), &BigUint::from(1u128 << 64) * &BigUint::from((1u128 << 64) - 1));
    let hi = &FixUint::from_u128(1 << 64) * &FixUint::from_u128(1 << 64);
    assert_eq!(hi.to_biguint(), &BigUint::from(1u128 << 64) * &BigUint::from(1u128 << 64));
}

#[test]
fn slow_path_produces_identical_values() {
    // The escape hatch changes representation, never value: a DP-style
    // fold run under the slow path equals the fast-path fold exactly.
    let vals: [u128; 6] = [3, 1 << 40, (1 << 63) + 7, u64::MAX as u128, 1 << 100, 12345];
    let fold = |mut acc: FixUint| {
        for &v in &vals {
            acc = &acc * &FixUint::from_u128(v);
            acc += &FixUint::from_u128(v);
        }
        acc
    };
    let fast = fold(FixUint::one());
    set_slow_path(true);
    let slow = fold(FixUint::one());
    set_slow_path(false);
    assert_eq!(fast.to_biguint(), slow.to_biguint());
    assert_eq!(fast.to_f64().to_bits(), slow.to_f64().to_bits());
    assert!(fast.to_bigfloat() == slow.to_bigfloat());
}
