//! Property-based tests: algebraic laws of `BigUint`, `BigInt`, `Rational`,
//! checked against `u128`/`i128` reference semantics and against each other.

use pqe_arith::{BigInt, BigUint, Rational};
use pqe_testkit::prelude::*;
use pqe_testkit::BoxedGen;

fn cfg() -> Config {
    Config::cases(256).with_corpus("tests/corpus/proptests.corpus")
}

fn biguint_gen() -> BoxedGen<BigUint> {
    // Mix small values (edge cases) with multi-limb values.
    one_of(vec![
        (0u64..16).prop_map(BigUint::from).boxed(),
        any::<u64>().prop_map(BigUint::from).boxed(),
        any::<u128>().prop_map(BigUint::from).boxed(),
        (any::<u128>(), any::<u128>())
            .prop_map(|(a, b)| &(&BigUint::from(a) << 128) + &BigUint::from(b))
            .boxed(),
    ])
    .boxed()
}

fn bigint_gen() -> BoxedGen<BigInt> {
    (biguint_gen(), any::<bool>())
        .prop_map(|(m, neg)| {
            let v = BigInt::from(m);
            if neg {
                -v
            } else {
                v
            }
        })
        .boxed()
}

fn rational_gen() -> BoxedGen<Rational> {
    (bigint_gen(), biguint_gen())
        .prop_map(|(n, d)| {
            let d = if d.is_zero() { BigUint::one() } else { d };
            Rational::new(n, d)
        })
        .boxed()
}

#[test]
fn add_matches_u128() {
    check("add_matches_u128", &cfg(), &(any::<u64>(), any::<u64>()), |&(a, b)| {
        let sum = &BigUint::from(a) + &BigUint::from(b);
        prop_assert_eq!(sum.to_u128(), Some(a as u128 + b as u128));
        Ok(())
    });
}

#[test]
fn mul_matches_u128() {
    check("mul_matches_u128", &cfg(), &(any::<u64>(), any::<u64>()), |&(a, b)| {
        let prod = &BigUint::from(a) * &BigUint::from(b);
        prop_assert_eq!(prod.to_u128(), Some(a as u128 * b as u128));
        Ok(())
    });
}

#[test]
fn divrem_matches_u128() {
    check("divrem_matches_u128", &cfg(), &(any::<u128>(), 1u128..), |&(a, b)| {
        let (q, r) = BigUint::from(a).divrem(&BigUint::from(b));
        prop_assert_eq!(q.to_u128(), Some(a / b));
        prop_assert_eq!(r.to_u128(), Some(a % b));
        Ok(())
    });
}

#[test]
fn mul_single_limb_fast_path_matches_general() {
    // `a * m` with a one-limb `m` takes the single-carry-pass fast path;
    // `a * (m << 32) >> 32` forces the two-limb schoolbook loop for the
    // same product. The two must agree limb-for-limb.
    check("mul_fast_path", &cfg(), &(biguint_gen(), any::<u32>()), |(a, m)| {
        let fast = a * &BigUint::from(*m);
        let general = &(a * &(&BigUint::from(*m) << 32)) >> 32;
        prop_assert_eq!(fast, general);
        Ok(())
    });
}

#[test]
fn divrem_u64_fast_path_matches_knuth() {
    // Two-limb ÷ two-limb hits the hardware-u64 fast path; shifting both
    // operands left 32 bits forces the Knuth Algorithm D path with the
    // same quotient and a shifted remainder.
    let gens = (any::<u64>(), (u32::MAX as u64 + 1)..);
    check("divrem_u64_fast_path", &cfg(), &gens, |&(a, b)| {
        let (q, r) = BigUint::from(a).divrem(&BigUint::from(b));
        let (qk, rk) = (&BigUint::from(a) << 32).divrem(&(&BigUint::from(b) << 32));
        prop_assert_eq!(&q, &qk);
        prop_assert_eq!(&r << 32, rk);
        prop_assert_eq!(q.to_u64(), Some(a / b));
        prop_assert_eq!(r.to_u64(), Some(a % b));
        Ok(())
    });
}

#[test]
fn add_commutative_associative() {
    let gens = (biguint_gen(), biguint_gen(), biguint_gen());
    check("add_commutative_associative", &cfg(), &gens, |(a, b, c)| {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(&(a + b) + c, a + &(b + c));
        Ok(())
    });
}

#[test]
fn mul_distributes_over_add() {
    let gens = (biguint_gen(), biguint_gen(), biguint_gen());
    check("mul_distributes_over_add", &cfg(), &gens, |(a, b, c)| {
        prop_assert_eq!(a * &(b + c), &(a * b) + &(a * c));
        Ok(())
    });
}

#[test]
fn divrem_reconstructs() {
    check("divrem_reconstructs", &cfg(), &(biguint_gen(), biguint_gen()), |(a, b)| {
        prop_assume!(!b.is_zero());
        let (q, r) = a.divrem(b);
        prop_assert!(r < *b);
        prop_assert_eq!(&(&q * b) + &r, *a);
        Ok(())
    });
}

#[test]
fn sub_inverts_add() {
    check("sub_inverts_add", &cfg(), &(biguint_gen(), biguint_gen()), |(a, b)| {
        prop_assert_eq!(&(a + b) - b, *a);
        Ok(())
    });
}

#[test]
fn shifts_are_pow2_muldiv() {
    check("shifts_are_pow2_muldiv", &cfg(), &(biguint_gen(), 0u64..200), |(a, s)| {
        let s = *s;
        let two_s = BigUint::from(2u32).pow(s as u32);
        prop_assert_eq!(a << s, a * &two_s);
        prop_assert_eq!(a >> s, a / &two_s);
        Ok(())
    });
}

#[test]
fn gcd_divides_both_and_is_maximal() {
    check("gcd_divides", &cfg(), &(biguint_gen(), biguint_gen()), |(a, b)| {
        prop_assume!(!a.is_zero() && !b.is_zero());
        let g = a.gcd(b);
        prop_assert!((a % &g).is_zero());
        prop_assert!((b % &g).is_zero());
        // Co-factors must be coprime.
        let ca = a / &g;
        let cb = b / &g;
        prop_assert!(ca.gcd(&cb).is_one());
        Ok(())
    });
}

#[test]
fn decimal_roundtrips() {
    check("decimal_roundtrips", &cfg(), &biguint_gen(), |a| {
        let s = a.to_string();
        prop_assert_eq!(BigUint::from_decimal(&s).unwrap(), *a);
        Ok(())
    });
}

#[test]
fn bits_bounds_value() {
    check("bits_bounds_value", &cfg(), &biguint_gen(), |a| {
        prop_assume!(!a.is_zero());
        let b = a.bits();
        prop_assert!(*a >= BigUint::from(2u32).pow((b - 1) as u32));
        prop_assert!(*a < BigUint::from(2u32).pow(b as u32));
        Ok(())
    });
}

#[test]
fn bigint_matches_i128() {
    check("bigint_matches_i128", &cfg(), &(any::<i64>(), any::<i64>()), |&(a, b)| {
        let (x, y) = (BigInt::from(a), BigInt::from(b));
        prop_assert_eq!((&x + &y).to_string(), (a as i128 + b as i128).to_string());
        prop_assert_eq!((&x - &y).to_string(), (a as i128 - b as i128).to_string());
        prop_assert_eq!((&x * &y).to_string(), (a as i128 * b as i128).to_string());
        if b != 0 {
            prop_assert_eq!((&x / &y).to_string(), (a as i128 / b as i128).to_string());
            prop_assert_eq!((&x % &y).to_string(), (a as i128 % b as i128).to_string());
        }
        Ok(())
    });
}

#[test]
fn bigint_add_negate_is_zero() {
    check("bigint_add_negate_is_zero", &cfg(), &bigint_gen(), |a| {
        prop_assert!((a + &(-a)).is_zero());
        Ok(())
    });
}

#[test]
fn rational_field_laws() {
    let gens = (rational_gen(), rational_gen(), rational_gen());
    check("rational_field_laws", &cfg(), &gens, |(a, b, c)| {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!(&(a + b) + c, a + &(b + c));
        prop_assert_eq!(a * &(b + c), &(a * b) + &(a * c));
        prop_assert_eq!(&(a - b) + b, a.clone());
        if !b.is_zero() {
            prop_assert_eq!(&(a / b) * b, *a);
        }
        Ok(())
    });
}

#[test]
fn rational_normalized_invariants() {
    check("rational_normalized_invariants", &cfg(), &rational_gen(), |a| {
        prop_assert!(!a.denominator().is_zero());
        if a.is_zero() {
            prop_assert!(a.denominator().is_one());
        } else {
            prop_assert!(a.numerator().magnitude().gcd(a.denominator()).is_one());
        }
        Ok(())
    });
}

#[test]
fn rational_display_roundtrips() {
    check("rational_display_roundtrips", &cfg(), &rational_gen(), |a| {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Rational>().unwrap(), *a);
        Ok(())
    });
}

#[test]
fn to_f64_matches_u128_cast() {
    // Differential against the primitive cast (which Rust guarantees is
    // correctly rounded, nearest-even). Biased to values just past the
    // 64-bit window, where the old truncating conversion dropped low bits.
    let gens = (any::<u64>(), any::<u64>(), 0u64..65);
    check("to_f64_matches_u128_cast", &cfg(), &gens, |&(a, b, s)| {
        let v = ((a as u128) << s) + b as u128;
        prop_assert_eq!(BigUint::from(v).to_f64(), v as f64);
        Ok(())
    });
}

#[test]
fn to_f64_commutes_with_pow2_scaling() {
    // (x << k) is exactly x·2^k, and rounding commutes with exact
    // power-of-two scaling — so the conversion of the shifted value must
    // equal the scaled conversion, arbitrarily far past 128 bits.
    let gens = (1u64.., 0u64..700);
    check("to_f64_commutes_with_pow2_scaling", &cfg(), &gens, |&(a, k)| {
        let v = &BigUint::from(a) << k;
        prop_assert_eq!(v.to_f64(), (a as f64) * 2f64.powi(k as i32));
        Ok(())
    });
}

#[test]
fn to_f64_rounds_to_nearest_even_at_the_64_bit_boundary() {
    // 2^64 + 2^11 + 1: the bit dropped by the 64-bit window must break the
    // mantissa tie upward; the old truncating conversion instead landed on
    // the tie and rounded to even, giving 2^64 exactly.
    let v = (1u128 << 64) + (1 << 11) + 1;
    assert_eq!(v as f64, 2f64.powi(64) + 2f64.powi(12));
    assert_eq!(BigUint::from(v).to_f64(), v as f64);
}

#[test]
fn complement_involution() {
    check("complement_involution", &cfg(), &(0u64..1000, 1u64..1000), |&(n, d)| {
        prop_assume!(n <= d);
        let p = Rational::from_ratio(n as i64, d);
        prop_assert!(p.is_probability());
        prop_assert!(p.complement().is_probability());
        prop_assert_eq!(p.complement().complement(), p);
        Ok(())
    });
}
