//! Property-based tests: algebraic laws of `BigUint`, `BigInt`, `Rational`,
//! checked against `u128`/`i128` reference semantics and against each other.

use proptest::prelude::*;
use pqe_arith::{BigInt, BigUint, Rational};

fn biguint_strategy() -> impl Strategy<Value = BigUint> {
    // Mix small values (edge cases) with multi-limb values.
    prop_oneof![
        (0u64..16).prop_map(BigUint::from),
        any::<u64>().prop_map(BigUint::from),
        any::<u128>().prop_map(BigUint::from),
        (any::<u128>(), any::<u128>())
            .prop_map(|(a, b)| &(&BigUint::from(a) << 128) + &BigUint::from(b)),
    ]
}

fn bigint_strategy() -> impl Strategy<Value = BigInt> {
    (biguint_strategy(), any::<bool>()).prop_map(|(m, neg)| {
        let v = BigInt::from(m);
        if neg {
            -v
        } else {
            v
        }
    })
}

fn rational_strategy() -> impl Strategy<Value = Rational> {
    (bigint_strategy(), biguint_strategy()).prop_map(|(n, d)| {
        let d = if d.is_zero() { BigUint::one() } else { d };
        Rational::new(n, d)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let sum = &BigUint::from(a) + &BigUint::from(b);
        prop_assert_eq!(sum.to_u128(), Some(a as u128 + b as u128));
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let prod = &BigUint::from(a) * &BigUint::from(b);
        prop_assert_eq!(prod.to_u128(), Some(a as u128 * b as u128));
    }

    #[test]
    fn divrem_matches_u128(a in any::<u128>(), b in 1u128..) {
        let (q, r) = BigUint::from(a).divrem(&BigUint::from(b));
        prop_assert_eq!(q.to_u128(), Some(a / b));
        prop_assert_eq!(r.to_u128(), Some(a % b));
    }

    #[test]
    fn add_commutative_associative(a in biguint_strategy(), b in biguint_strategy(), c in biguint_strategy()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn mul_distributes_over_add(a in biguint_strategy(), b in biguint_strategy(), c in biguint_strategy()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn divrem_reconstructs(a in biguint_strategy(), b in biguint_strategy()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.divrem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn sub_inverts_add(a in biguint_strategy(), b in biguint_strategy()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn shifts_are_pow2_muldiv(a in biguint_strategy(), s in 0u64..200) {
        let two_s = BigUint::from(2u32).pow(s as u32);
        prop_assert_eq!(&a << s, &a * &two_s);
        prop_assert_eq!(&a >> s, &a / &two_s);
    }

    #[test]
    fn gcd_divides_both_and_is_maximal(a in biguint_strategy(), b in biguint_strategy()) {
        prop_assume!(!a.is_zero() && !b.is_zero());
        let g = a.gcd(&b);
        prop_assert!((&a % &g).is_zero());
        prop_assert!((&b % &g).is_zero());
        // Co-factors must be coprime.
        let ca = &a / &g;
        let cb = &b / &g;
        prop_assert!(ca.gcd(&cb).is_one());
    }

    #[test]
    fn decimal_roundtrips(a in biguint_strategy()) {
        let s = a.to_string();
        prop_assert_eq!(BigUint::from_decimal(&s).unwrap(), a);
    }

    #[test]
    fn bits_bounds_value(a in biguint_strategy()) {
        prop_assume!(!a.is_zero());
        let b = a.bits();
        prop_assert!(a >= BigUint::from(2u32).pow((b - 1) as u32));
        prop_assert!(a < BigUint::from(2u32).pow(b as u32));
    }

    #[test]
    fn bigint_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let (x, y) = (BigInt::from(a), BigInt::from(b));
        prop_assert_eq!((&x + &y).to_string(), (a as i128 + b as i128).to_string());
        prop_assert_eq!((&x - &y).to_string(), (a as i128 - b as i128).to_string());
        prop_assert_eq!((&x * &y).to_string(), (a as i128 * b as i128).to_string());
        if b != 0 {
            prop_assert_eq!((&x / &y).to_string(), (a as i128 / b as i128).to_string());
            prop_assert_eq!((&x % &y).to_string(), (a as i128 % b as i128).to_string());
        }
    }

    #[test]
    fn bigint_add_negate_is_zero(a in bigint_strategy()) {
        prop_assert!((&a + &(-&a)).is_zero());
    }

    #[test]
    fn rational_field_laws(a in rational_strategy(), b in rational_strategy(), c in rational_strategy()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&(&a - &b) + &b, a.clone());
        if !b.is_zero() {
            prop_assert_eq!(&(&a / &b) * &b, a);
        }
    }

    #[test]
    fn rational_normalized_invariants(a in rational_strategy()) {
        prop_assert!(!a.denominator().is_zero());
        if a.is_zero() {
            prop_assert!(a.denominator().is_one());
        } else {
            prop_assert!(a.numerator().magnitude().gcd(a.denominator()).is_one());
        }
    }

    #[test]
    fn rational_display_roundtrips(a in rational_strategy()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Rational>().unwrap(), a);
    }

    #[test]
    fn complement_involution(n in 0u64..1000, d in 1u64..1000) {
        prop_assume!(n <= d);
        let p = Rational::from_ratio(n as i64, d);
        prop_assert!(p.is_probability());
        prop_assert!(p.complement().is_probability());
        prop_assert_eq!(p.complement().complement(), p);
    }
}
