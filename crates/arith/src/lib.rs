#![warn(missing_docs)]

//! # pqe-arith — arbitrary-precision arithmetic for probabilistic query evaluation
//!
//! The PQE reduction of van Bremen & Meel (PODS 2023) manipulates quantities
//! that overflow any fixed-width integer type:
//!
//! * uniform reliability counts `UR(Q, D)` can be as large as `2^{|D|}`;
//! * the probability denominator `d = ∏_i d_i` of §5.2 is a product of one
//!   rational denominator per fact;
//! * weighted tree counts `|L_k(T^c)| = Σ_{D' ⊨ Q} ∏ w_i ∏ (d_i − w_i)` mix
//!   both.
//!
//! This crate provides the three number types the rest of the workspace
//! builds on: [`BigUint`], [`BigInt`], and [`Rational`]. They are written
//! from scratch (no external bignum dependency) with `u32` limbs and `u64`
//! intermediates, favouring simplicity and auditability over raw speed; the
//! FPRAS pipeline spends its time in sampling and joins, not in arithmetic.
//!
//! ```
//! use pqe_arith::{BigUint, Rational};
//!
//! let two_pow_100 = BigUint::from(2u32).pow(100);
//! assert_eq!(two_pow_100.to_string(), "1267650600228229401496703205376");
//!
//! let half = Rational::new(1.into(), 2u32.into());
//! let third = Rational::new(1.into(), 3u32.into());
//! assert_eq!((&half + &third).to_string(), "5/6");
//! ```

mod bigfloat;
mod bigint;
mod biguint;
mod fixuint;
mod rational;

pub use bigfloat::BigFloat;
pub use bigint::{BigInt, Sign};
pub use biguint::BigUint;
pub use fixuint::{set_slow_path, slow_path_forced, FixUint};
pub use rational::Rational;

/// Error returned when parsing a number from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNumError {
    kind: ParseNumErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseNumErrorKind {
    Empty,
    InvalidDigit(char),
    ZeroDenominator,
}

impl ParseNumError {
    fn empty() -> Self {
        Self {
            kind: ParseNumErrorKind::Empty,
        }
    }
    fn invalid(c: char) -> Self {
        Self {
            kind: ParseNumErrorKind::InvalidDigit(c),
        }
    }
    fn zero_denominator() -> Self {
        Self {
            kind: ParseNumErrorKind::ZeroDenominator,
        }
    }
}

impl std::fmt::Display for ParseNumError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            ParseNumErrorKind::Empty => write!(f, "empty numeric literal"),
            ParseNumErrorKind::InvalidDigit(c) => write!(f, "invalid digit {c:?}"),
            ParseNumErrorKind::ZeroDenominator => write!(f, "zero denominator"),
        }
    }
}

impl std::error::Error for ParseNumError {}
