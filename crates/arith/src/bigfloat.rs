//! A wide-exponent floating-point type for FPRAS estimates.
//!
//! Approximate counts in the CountNFA/CountNFTA algorithms reach `2^{|D|}`
//! and beyond — far past `f64::MAX` — while only a few significant digits
//! matter (the estimate carries `(1±ε)` error anyway). `BigFloat` stores a
//! value as `mantissa × 2^exp` with an `f64` mantissa normalized into
//! `[1, 2)` and an `i64` exponent, giving ~15 significant digits over an
//! astronomically wide range at `f64` speed.

use crate::{BigUint, Rational};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// A non-negative approximate real `mantissa × 2^exp` (see module docs).
///
/// Zero is represented canonically as `mantissa = 0, exp = 0`. Negative
/// values are not needed by the pipeline and are rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BigFloat {
    mantissa: f64,
    exp: i64,
}

impl BigFloat {
    /// The value `0`.
    pub fn zero() -> Self {
        BigFloat {
            mantissa: 0.0,
            exp: 0,
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigFloat {
            mantissa: 1.0,
            exp: 0,
        }
    }

    /// Whether this is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.mantissa == 0.0
    }

    /// Creates `mantissa × 2^exp`, normalizing. Panics on negative, NaN, or
    /// infinite mantissa.
    pub fn new(mantissa: f64, exp: i64) -> Self {
        assert!(
            mantissa.is_finite() && mantissa >= 0.0,
            "BigFloat mantissa must be finite and non-negative, got {mantissa}"
        );
        if mantissa == 0.0 {
            return Self::zero();
        }
        let (m, e) = normalize(mantissa);
        BigFloat {
            mantissa: m,
            exp: exp + e,
        }
    }

    /// Converts from `f64`. Panics on negative/NaN/infinite input.
    pub fn from_f64(v: f64) -> Self {
        Self::new(v, 0)
    }

    /// Converts from an exact big integer (rounded to ~53 bits).
    pub fn from_biguint(v: &BigUint) -> Self {
        let bits = v.bits();
        if bits == 0 {
            return Self::zero();
        }
        if bits <= 63 {
            return Self::from_f64(v.to_u64().unwrap() as f64);
        }
        let shift = bits - 63;
        let top = (v >> shift).to_u64().unwrap() as f64;
        Self::new(top, shift as i64)
    }

    /// Converts from an exact non-negative rational. Panics on negatives.
    pub fn from_rational(v: &Rational) -> Self {
        assert!(
            !v.numerator().is_negative(),
            "BigFloat::from_rational on negative value"
        );
        if v.is_zero() {
            return Self::zero();
        }
        let num = Self::from_biguint(v.numerator().magnitude());
        let den = Self::from_biguint(v.denominator());
        num / den
    }

    /// Best-effort `f64` (may overflow to `inf` / underflow to 0).
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        if self.exp > 1100 {
            return f64::INFINITY;
        }
        if self.exp < -1100 {
            return 0.0;
        }
        self.mantissa * 2f64.powi(self.exp as i32)
    }

    /// Rounds to the nearest big integer (values ≥ 2^62 keep only the top
    /// ~53 significant bits — consistent with the type's precision).
    pub fn to_biguint_round(&self) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let v = self.to_f64();
        if v.is_finite() && v < 9.0e18 {
            return BigUint::from(v.round() as u64);
        }
        // mantissa ∈ [1,2): scale into integer and shift.
        let scaled = (self.mantissa * 2f64.powi(52)) as u64;
        let shift = self.exp - 52;
        debug_assert!(shift > 0);
        &BigUint::from(scaled) << shift as u64
    }

    /// `log₂` of the value. Panics on zero.
    pub fn log2(&self) -> f64 {
        assert!(!self.is_zero(), "log2 of zero");
        self.mantissa.log2() + self.exp as f64
    }

    /// Multiplies by `2^k`.
    pub fn scale_exp(&self, k: i64) -> Self {
        if self.is_zero() {
            return *self;
        }
        BigFloat {
            mantissa: self.mantissa,
            exp: self.exp + k,
        }
    }

    /// The relative difference `|self − other| / max(other, tiny)` computed
    /// in a numerically safe way. Used by accuracy experiments.
    pub fn relative_error_to(&self, reference: &BigFloat) -> f64 {
        if reference.is_zero() {
            return if self.is_zero() { 0.0 } else { f64::INFINITY };
        }
        let ratio = (*self / *reference).to_f64();
        (ratio - 1.0).abs()
    }
}

fn normalize(m: f64) -> (f64, i64) {
    debug_assert!(m > 0.0 && m.is_finite());
    // frexp: m = f × 2^e with f ∈ [0.5, 1); shift into [1, 2).
    let bits = m.to_bits();
    let raw_exp = ((bits >> 52) & 0x7FF) as i64;
    if raw_exp == 0 {
        // Subnormal: renormalize by multiplying up.
        let scaled = m * 2f64.powi(200);
        let (nm, ne) = normalize(scaled);
        return (nm, ne - 200);
    }
    let e = raw_exp - 1023;
    (m / 2f64.powi(e as i32), e)
}

impl Add for BigFloat {
    type Output = BigFloat;
    fn add(self, rhs: BigFloat) -> BigFloat {
        if self.is_zero() {
            return rhs;
        }
        if rhs.is_zero() {
            return self;
        }
        let (hi, lo) = if self.exp >= rhs.exp {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let shift = hi.exp - lo.exp;
        if shift > 64 {
            return hi; // lo vanishes at this precision
        }
        BigFloat::new(hi.mantissa + lo.mantissa / 2f64.powi(shift as i32), hi.exp)
    }
}

impl Sub for BigFloat {
    type Output = BigFloat;
    /// Saturating subtraction (clamps at zero): estimates are non-negative.
    fn sub(self, rhs: BigFloat) -> BigFloat {
        if rhs.is_zero() {
            return self;
        }
        if self <= rhs {
            return BigFloat::zero();
        }
        let shift = self.exp - rhs.exp;
        if shift > 64 {
            return self;
        }
        BigFloat::new(self.mantissa - rhs.mantissa / 2f64.powi(shift as i32), self.exp)
    }
}

impl Mul for BigFloat {
    type Output = BigFloat;
    fn mul(self, rhs: BigFloat) -> BigFloat {
        if self.is_zero() || rhs.is_zero() {
            return BigFloat::zero();
        }
        BigFloat::new(self.mantissa * rhs.mantissa, self.exp + rhs.exp)
    }
}

impl Div for BigFloat {
    type Output = BigFloat;
    fn div(self, rhs: BigFloat) -> BigFloat {
        assert!(!rhs.is_zero(), "BigFloat division by zero");
        if self.is_zero() {
            return BigFloat::zero();
        }
        BigFloat::new(self.mantissa / rhs.mantissa, self.exp - rhs.exp)
    }
}

impl Mul<f64> for BigFloat {
    type Output = BigFloat;
    fn mul(self, rhs: f64) -> BigFloat {
        self * BigFloat::from_f64(rhs)
    }
}

impl PartialOrd for BigFloat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match (self.is_zero(), other.is_zero()) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => match self.exp.cmp(&other.exp) {
                Ordering::Equal => self.mantissa.partial_cmp(&other.mantissa),
                ord => Some(ord),
            },
        }
    }
}

impl fmt::Display for BigFloat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Convert to decimal scientific notation: value = 10^d.
        let d = self.log2() * std::f64::consts::LOG10_2;
        let exp10 = d.floor() as i64;
        let frac = 10f64.powf(d - exp10 as f64);
        write!(f, "{frac:.6}e{exp10}")
    }
}

impl std::iter::Sum for BigFloat {
    fn sum<I: Iterator<Item = BigFloat>>(iter: I) -> BigFloat {
        iter.fold(BigFloat::zero(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic_matches_f64() {
        let a = BigFloat::from_f64(3.5);
        let b = BigFloat::from_f64(2.0);
        assert_eq!((a + b).to_f64(), 5.5);
        assert_eq!((a * b).to_f64(), 7.0);
        assert_eq!((a / b).to_f64(), 1.75);
        assert_eq!((a - b).to_f64(), 1.5);
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = BigFloat::from_f64(1.0);
        let b = BigFloat::from_f64(2.0);
        assert!((a - b).is_zero());
    }

    #[test]
    fn huge_values_survive() {
        // 2^10000: overflows f64 but not BigFloat.
        let mut v = BigFloat::one();
        let two = BigFloat::from_f64(2.0);
        for _ in 0..10_000 {
            v = v * two;
        }
        assert!((v.log2() - 10_000.0).abs() < 1e-6);
        assert_eq!(v.to_f64(), f64::INFINITY);
        let half = BigFloat::from_f64(0.5);
        for _ in 0..10_000 {
            v = v * half;
        }
        assert!((v.to_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn add_across_scales() {
        let big = BigFloat::new(1.0, 100);
        let small = BigFloat::new(1.0, 0);
        let sum = big + small;
        assert!((sum.log2() - 100.0).abs() < 1e-9);
        // Adding something within 64 binary orders is visible.
        let near = BigFloat::new(1.0, 99);
        assert!((big + near).log2() > 100.5);
    }

    #[test]
    fn from_biguint_roundtrip() {
        let v = BigUint::from(2u32).pow(200);
        let f = BigFloat::from_biguint(&v);
        assert!((f.log2() - 200.0).abs() < 1e-9);
        let back = f.to_biguint_round();
        // Same magnitude and top bits.
        assert_eq!(back.bits(), v.bits());
        let small = BigUint::from(123456u32);
        assert_eq!(
            BigFloat::from_biguint(&small).to_biguint_round().to_u64(),
            Some(123456)
        );
    }

    #[test]
    fn from_rational_probabilities() {
        let p = Rational::from_ratio(3, 4);
        assert!((BigFloat::from_rational(&p).to_f64() - 0.75).abs() < 1e-12);
        assert!(BigFloat::from_rational(&Rational::zero()).is_zero());
    }

    #[test]
    fn ordering() {
        assert!(BigFloat::new(1.5, 10) > BigFloat::new(1.9, 9));
        assert!(BigFloat::zero() < BigFloat::one());
        assert!(BigFloat::new(1.2, 5) < BigFloat::new(1.3, 5));
    }

    #[test]
    fn relative_error() {
        let a = BigFloat::from_f64(105.0);
        let b = BigFloat::from_f64(100.0);
        assert!((a.relative_error_to(&b) - 0.05).abs() < 1e-12);
        assert_eq!(BigFloat::zero().relative_error_to(&BigFloat::zero()), 0.0);
    }

    #[test]
    fn display_scientific() {
        let v = BigFloat::new(1.0, 40); // 2^40 ≈ 1.0995e12
        let s = v.to_string();
        assert!(s.ends_with("e12"), "{s}");
    }

    #[test]
    fn sum_iterator() {
        let total: BigFloat = (1..=4).map(|i| BigFloat::from_f64(i as f64)).sum();
        assert_eq!(total.to_f64(), 10.0);
    }
}
