//! Arbitrary-precision rationals.
//!
//! Fact probabilities in a probabilistic database are rationals
//! `π(f) = w/d ∈ [0,1] ∩ ℚ` (paper §2); query probabilities are sums of
//! products of those, so they stay rational and we compute them exactly
//! wherever an exact method applies. The FPRAS result itself is also
//! reported as a `Rational` (`d⁻¹ · CountNFTA(k, T')`, §5.2).

use crate::{BigInt, BigUint, ParseNumError, Sign};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};
use std::str::FromStr;

/// An exact rational number `num / den`, always normalized: `den > 0`,
/// `gcd(|num|, den) = 1`, and zero is `0/1`.
///
/// ```
/// use pqe_arith::Rational;
/// let p: Rational = "3/10".parse().unwrap();
/// let q: Rational = "1/5".parse().unwrap();
/// assert_eq!((&p * &q).to_string(), "3/50");
/// assert_eq!(p.complement().to_string(), "7/10"); // 1 - 3/10
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    num: BigInt,
    den: BigUint,
}

impl Rational {
    /// The value `0`.
    pub fn zero() -> Self {
        Rational {
            num: BigInt::zero(),
            den: BigUint::one(),
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        Rational {
            num: BigInt::one(),
            den: BigUint::one(),
        }
    }

    /// Creates `num / den`, normalizing. Panics if `den == 0`.
    pub fn new(num: BigInt, den: BigUint) -> Self {
        assert!(!den.is_zero(), "rational with zero denominator");
        let mut r = Rational { num, den };
        r.normalize();
        r
    }

    /// Creates `num / den` from machine integers. Panics if `den == 0`.
    pub fn from_ratio(num: i64, den: u64) -> Self {
        Rational::new(BigInt::from(num), BigUint::from(den))
    }

    /// Creates the integer `n`.
    pub fn from_int(n: i64) -> Self {
        Rational {
            num: BigInt::from(n),
            den: BigUint::one(),
        }
    }

    fn normalize(&mut self) {
        if self.num.is_zero() {
            self.den = BigUint::one();
            return;
        }
        let g = self.num.magnitude().gcd(&self.den);
        if !g.is_one() {
            let mag = self.num.magnitude() / &g;
            self.num = BigInt::from_sign_magnitude(self.num.sign(), mag);
            self.den = &self.den / &g;
        }
    }

    /// The (normalized) numerator.
    pub fn numerator(&self) -> &BigInt {
        &self.num
    }

    /// The (normalized, strictly positive) denominator.
    pub fn denominator(&self) -> &BigUint {
        &self.den
    }

    /// Returns `true` iff `self == 0`.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` iff `self == 1`.
    pub fn is_one(&self) -> bool {
        self.den.is_one() && self.num == BigInt::one()
    }

    /// Returns `true` iff `0 ≤ self ≤ 1` — i.e. `self` is a valid
    /// probability.
    pub fn is_probability(&self) -> bool {
        !self.num.is_negative() && self.num.magnitude() <= &self.den
    }

    /// `1 − self`, the probability of the complementary event.
    pub fn complement(&self) -> Rational {
        &Rational::one() - self
    }

    /// Multiplicative inverse. Panics on zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rational::new(
            BigInt::from_sign_magnitude(self.num.sign(), self.den.clone()),
            self.num.magnitude().clone(),
        )
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Best-effort `f64` approximation (for reporting).
    ///
    /// Computed from the top bits of numerator and denominator so that even
    /// astronomically large operands give a sensible result.
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        let nb = self.num.magnitude().bits() as i64;
        let db = self.den.bits() as i64;
        // Scale both into the u64 range, tracking the exponent shift.
        let nshift = (nb - 63).max(0) as u64;
        let dshift = (db - 63).max(0) as u64;
        let ntop = (self.num.magnitude() >> nshift).to_u64().unwrap() as f64;
        let dtop = (&self.den >> dshift).to_u64().unwrap() as f64;
        let v = ntop / dtop * 2f64.powi((nshift as i64 - dshift as i64) as i32);
        if self.num.is_negative() {
            -v
        } else {
            v
        }
    }

    /// `self^exp` by binary exponentiation (on normalized parts).
    pub fn pow(&self, exp: u32) -> Rational {
        Rational {
            num: self.num.pow(exp),
            den: self.den.pow(exp),
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from_int(v)
    }
}

impl From<u32> for Rational {
    fn from(v: u32) -> Self {
        Rational::from_int(v as i64)
    }
}

impl From<BigUint> for Rational {
    fn from(v: BigUint) -> Self {
        Rational {
            num: BigInt::from(v),
            den: BigUint::one(),
        }
    }
}

impl FromStr for Rational {
    type Err = ParseNumError;

    /// Parses `"num"`, `"num/den"`, or decimal `"0.25"` forms.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some((n, d)) = s.split_once('/') {
            let num: BigInt = n.trim().parse()?;
            let den = BigUint::from_decimal(d.trim())?;
            if den.is_zero() {
                return Err(ParseNumError::zero_denominator());
            }
            Ok(Rational::new(num, den))
        } else if let Some((i, frac)) = s.split_once('.') {
            let neg = i.trim_start().starts_with('-');
            let int_part: BigInt = if i.is_empty() || i == "-" {
                BigInt::zero()
            } else {
                i.trim().parse()?
            };
            let frac_digits = frac.trim();
            let frac_num = BigUint::from_decimal(frac_digits)?;
            let scale = BigUint::from(10u32).pow(frac_digits.len() as u32);
            let mag = &(int_part.magnitude() * &scale) + &frac_num;
            let sign = if mag.is_zero() {
                Sign::Zero
            } else if neg {
                Sign::Negative
            } else {
                Sign::Positive
            };
            Ok(Rational::new(BigInt::from_sign_magnitude(sign, mag), scale))
        } else {
            Ok(Rational {
                num: s.trim().parse()?,
                den: BigUint::one(),
            })
        }
    }
}

impl Add for &Rational {
    type Output = Rational;
    fn add(self, rhs: &Rational) -> Rational {
        let num = &self.num * &BigInt::from(rhs.den.clone())
            + &rhs.num * &BigInt::from(self.den.clone());
        Rational::new(num, &self.den * &rhs.den)
    }
}

impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        self + &(-rhs)
    }
}

impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &Rational) -> Rational {
        Rational::new(&self.num * &rhs.num, &self.den * &rhs.den)
    }
}

impl Div for &Rational {
    type Output = Rational;
    #[allow(clippy::suspicious_arithmetic_impl)] // division as a·b⁻¹ is the definition here
    fn div(self, rhs: &Rational) -> Rational {
        self * &rhs.recip()
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -&self.num,
            den: self.den.clone(),
        }
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

macro_rules! forward_value_ops_rat {
    ($($trait:ident :: $m:ident),*) => {$(
        impl $trait for Rational {
            type Output = Rational;
            fn $m(self, rhs: Rational) -> Rational { $trait::$m(&self, &rhs) }
        }
        impl $trait<&Rational> for Rational {
            type Output = Rational;
            fn $m(self, rhs: &Rational) -> Rational { $trait::$m(&self, rhs) }
        }
        impl $trait<Rational> for &Rational {
            type Output = Rational;
            fn $m(self, rhs: Rational) -> Rational { $trait::$m(self, &rhs) }
        }
    )*};
}
forward_value_ops_rat!(Add::add, Sub::sub, Mul::mul, Div::div);

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  <=>  a*d vs c*b   (b, d > 0)
        let lhs = &self.num * &BigInt::from(other.den.clone());
        let rhs = &other.num * &BigInt::from(self.den.clone());
        lhs.cmp(&rhs)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rat(s: &str) -> Rational {
        s.parse().unwrap()
    }

    #[test]
    fn normalization() {
        assert_eq!(rat("4/8").to_string(), "1/2");
        assert_eq!(rat("-4/8").to_string(), "-1/2");
        assert_eq!(rat("0/7").to_string(), "0");
        assert_eq!(rat("8/4").to_string(), "2");
    }

    #[test]
    fn decimal_parsing() {
        assert_eq!(rat("0.25").to_string(), "1/4");
        assert_eq!(rat("-0.5").to_string(), "-1/2");
        assert_eq!(rat("1.75").to_string(), "7/4");
        assert_eq!(rat("0.0").to_string(), "0");
    }

    #[test]
    fn field_ops() {
        assert_eq!((rat("1/2") + rat("1/3")).to_string(), "5/6");
        assert_eq!((rat("1/2") - rat("1/3")).to_string(), "1/6");
        assert_eq!((rat("2/3") * rat("3/4")).to_string(), "1/2");
        assert_eq!((rat("1/2") / rat("1/4")).to_string(), "2");
    }

    #[test]
    fn complement_is_one_minus() {
        assert_eq!(rat("3/10").complement().to_string(), "7/10");
        assert_eq!(rat("0").complement().to_string(), "1");
        assert_eq!(rat("1").complement().to_string(), "0");
    }

    #[test]
    fn probability_range_check() {
        assert!(rat("0").is_probability());
        assert!(rat("1").is_probability());
        assert!(rat("999/1000").is_probability());
        assert!(!rat("-1/2").is_probability());
        assert!(!rat("3/2").is_probability());
    }

    #[test]
    fn ordering() {
        assert!(rat("1/3") < rat("1/2"));
        assert!(rat("-1/2") < rat("-1/3"));
        assert!(rat("2/4") == rat("1/2"));
    }

    #[test]
    fn to_f64_accuracy() {
        assert!((rat("1/3").to_f64() - 1.0 / 3.0).abs() < 1e-12);
        // Huge numerator/denominator still approximates well.
        let big = Rational::new(
            BigInt::from(BigUint::from(2u32).pow(200)),
            BigUint::from(3u32).pow(130),
        );
        let expected = 200.0 * 2f64.ln() - 130.0 * 3f64.ln();
        assert!((big.to_f64().ln() - expected).abs() < 1e-9);
    }

    #[test]
    fn recip_and_pow() {
        assert_eq!(rat("3/7").recip().to_string(), "7/3");
        assert_eq!(rat("-3/7").recip().to_string(), "-7/3");
        assert_eq!(rat("2/3").pow(3).to_string(), "8/27");
        assert_eq!(rat("2/3").pow(0).to_string(), "1");
    }

    #[test]
    fn parse_rejects_zero_denominator() {
        assert!("1/0".parse::<Rational>().is_err());
    }
}
