//! Fixed-width fast-path integers for the FPRAS sampling loops.
//!
//! The run-count and path-count DPs (`RunTables`, `NfaCounter`) are pure
//! non-negative integer arithmetic — add and multiply, never subtract —
//! and on the automata built by the PQE reduction the counts overwhelmingly
//! fit in a machine word. [`FixUint`] carries such a count in a `u128` and
//! spills to [`BigUint`] only when a checked operation actually overflows,
//! so the hot loops pay two register ops instead of a limb-vector
//! allocation per step.
//!
//! ## Equivalence contract
//!
//! The estimators never branch on a `FixUint`'s *representation* — only on
//! its value — and the two lossy conversions ([`FixUint::to_f64`],
//! [`FixUint::to_bigfloat`]) are written to be bit-identical to the
//! `BigUint` reference (`BigUint::to_f64`, `BigFloat::from_biguint`) for
//! every value, on either side of the overflow crossover. That invariant is
//! what makes the fast path invisible to the golden determinism digits; it
//! is pinned by differential property tests (`tests/fixuint_differential.rs`)
//! and, end to end, by the workspace equivalence suite run under
//! [`set_slow_path`].
//!
//! ## The escape hatch
//!
//! Setting the environment variable `PQE_SLOW_PATH=1` (read once), or
//! calling [`set_slow_path`]`(true)` from tests, forces every newly
//! constructed `FixUint` into the `Big` representation, routing all
//! arithmetic through the `BigUint` reference implementation. Differential
//! suites run the same estimate with the flag on and off and assert
//! bit-identical digits.

use crate::{BigFloat, BigUint};
use std::ops::{Add, AddAssign, Mul};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static SLOW_PATH: AtomicBool = AtomicBool::new(false);
static SLOW_PATH_ENV: OnceLock<bool> = OnceLock::new();

/// Whether the `BigUint`-only slow path is currently forced (env
/// `PQE_SLOW_PATH` or [`set_slow_path`]).
pub fn slow_path_forced() -> bool {
    let env = *SLOW_PATH_ENV.get_or_init(|| {
        std::env::var("PQE_SLOW_PATH").is_ok_and(|v| {
            let v = v.trim();
            !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false")
        })
    });
    env || SLOW_PATH.load(Ordering::Relaxed)
}

/// Forces (or releases) the `BigUint`-only slow path for newly constructed
/// [`FixUint`] values. Test-only escape hatch; the env variable
/// `PQE_SLOW_PATH` is the process-wide equivalent.
pub fn set_slow_path(on: bool) {
    SLOW_PATH.store(on, Ordering::Relaxed);
}

#[derive(Debug, Clone)]
enum Repr {
    Small(u128),
    Big(BigUint),
}

/// A non-negative integer held in a `u128` until an operation overflows,
/// then in a [`BigUint`] (see module docs). Supports exactly the
/// operations the sampling DPs need: add, multiply, zero/one tests, and
/// the two lossy conversions.
#[derive(Debug, Clone)]
pub struct FixUint(Repr);

impl FixUint {
    /// The value `0`.
    pub fn zero() -> Self {
        Self::from_u128(0)
    }

    /// The value `1`.
    pub fn one() -> Self {
        Self::from_u128(1)
    }

    /// Constructs from a `u128` (the fast representation unless the slow
    /// path is forced).
    pub fn from_u128(v: u128) -> Self {
        if slow_path_forced() {
            FixUint(Repr::Big(BigUint::from(v)))
        } else {
            FixUint(Repr::Small(v))
        }
    }

    /// Constructs from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        Self::from_u128(v as u128)
    }

    /// Constructs from an exact big integer, demoting to the fast
    /// representation when the value fits.
    pub fn from_biguint(v: BigUint) -> Self {
        if slow_path_forced() {
            return FixUint(Repr::Big(v));
        }
        match v.to_u128() {
            Some(s) => FixUint(Repr::Small(s)),
            None => FixUint(Repr::Big(v)),
        }
    }

    /// `true` iff the value is `0`.
    pub fn is_zero(&self) -> bool {
        match &self.0 {
            Repr::Small(v) => *v == 0,
            Repr::Big(b) => b.is_zero(),
        }
    }

    /// The exact value as a [`BigUint`] (clones the big representation).
    pub fn to_biguint(&self) -> BigUint {
        match &self.0 {
            Repr::Small(v) => BigUint::from(*v),
            Repr::Big(b) => b.clone(),
        }
    }

    /// The value as a `u64` if it fits (mirrors `BigUint::to_u64`).
    pub fn to_u64(&self) -> Option<u64> {
        match &self.0 {
            Repr::Small(v) => u64::try_from(*v).ok(),
            Repr::Big(b) => b.to_u64(),
        }
    }

    /// Best-effort `f64`, bit-identical to `BigUint::to_f64` on the same
    /// value regardless of representation.
    pub fn to_f64(&self) -> f64 {
        match &self.0 {
            // `BigUint::to_f64` is correctly rounded (nearest-even), which
            // is exactly what the primitive u128 → f64 cast guarantees.
            Repr::Small(v) => *v as f64,
            Repr::Big(b) => b.to_f64(),
        }
    }

    /// Rounds into a [`BigFloat`], bit-identical to
    /// `BigFloat::from_biguint` on the same value regardless of
    /// representation.
    pub fn to_bigfloat(&self) -> BigFloat {
        match &self.0 {
            Repr::Small(v) => {
                let v = *v;
                let bits = 128 - v.leading_zeros() as u64;
                if bits == 0 {
                    return BigFloat::zero();
                }
                if bits <= 63 {
                    return BigFloat::from_f64((v as u64) as f64);
                }
                let shift = bits - 63;
                let top = (v >> shift) as u64 as f64;
                BigFloat::new(top, shift as i64)
            }
            Repr::Big(b) => BigFloat::from_biguint(b),
        }
    }

    fn add_ref(&self, rhs: &FixUint) -> FixUint {
        match (&self.0, &rhs.0) {
            (Repr::Small(a), Repr::Small(b)) => match a.checked_add(*b) {
                Some(v) => FixUint(Repr::Small(v)),
                None => FixUint(Repr::Big(&BigUint::from(*a) + &BigUint::from(*b))),
            },
            _ => FixUint(Repr::Big(&self.to_biguint() + &rhs.to_biguint())),
        }
    }

    fn mul_ref(&self, rhs: &FixUint) -> FixUint {
        match (&self.0, &rhs.0) {
            (Repr::Small(a), Repr::Small(b)) => match a.checked_mul(*b) {
                Some(v) => FixUint(Repr::Small(v)),
                None => FixUint(Repr::Big(&BigUint::from(*a) * &BigUint::from(*b))),
            },
            _ => FixUint(Repr::Big(&self.to_biguint() * &rhs.to_biguint())),
        }
    }
}

impl PartialEq for FixUint {
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (Repr::Small(a), Repr::Small(b)) => a == b,
            // Mixed representations can only meet in tests that toggle the
            // slow path; compare by value.
            _ => self.to_biguint() == other.to_biguint(),
        }
    }
}

impl Eq for FixUint {}

impl Add for &FixUint {
    type Output = FixUint;
    fn add(self, rhs: &FixUint) -> FixUint {
        self.add_ref(rhs)
    }
}

impl AddAssign<&FixUint> for FixUint {
    fn add_assign(&mut self, rhs: &FixUint) {
        *self = self.add_ref(rhs);
    }
}

impl AddAssign for FixUint {
    fn add_assign(&mut self, rhs: FixUint) {
        *self = self.add_ref(&rhs);
    }
}

impl Mul for &FixUint {
    type Output = FixUint;
    fn mul(self, rhs: &FixUint) -> FixUint {
        self.mul_ref(rhs)
    }
}

impl From<u64> for FixUint {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

impl From<u128> for FixUint {
    fn from(v: u128) -> Self {
        Self::from_u128(v)
    }
}

impl From<BigUint> for FixUint {
    fn from(v: BigUint) -> Self {
        Self::from_biguint(v)
    }
}

impl std::fmt::Display for FixUint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_biguint())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_arithmetic_matches_biguint() {
        let a = FixUint::from_u64(123456789);
        let b = FixUint::from_u64(987654321);
        assert_eq!((&a + &b).to_biguint(), BigUint::from(1111111110u64));
        assert_eq!(
            (&a * &b).to_biguint(),
            &BigUint::from(123456789u64) * &BigUint::from(987654321u64)
        );
    }

    #[test]
    fn overflow_spills_to_big() {
        let a = FixUint::from_u128(u128::MAX);
        let b = FixUint::one();
        let sum = &a + &b;
        assert!(matches!(sum.0, Repr::Big(_)));
        assert_eq!(sum.to_biguint(), &BigUint::from(u128::MAX) + &BigUint::one());
        let sq = &a * &a;
        let expect = &BigUint::from(u128::MAX) * &BigUint::from(u128::MAX);
        assert_eq!(sq.to_biguint(), expect);
    }

    #[test]
    fn big_results_keep_accumulating() {
        let mut acc = FixUint::from_u128(u128::MAX);
        let one = FixUint::one();
        for _ in 0..10 {
            acc += &one;
        }
        assert_eq!(
            acc.to_biguint(),
            &BigUint::from(u128::MAX) + &BigUint::from(10u32)
        );
    }

    #[test]
    fn conversions_match_reference_at_crossovers() {
        let interesting: Vec<u128> = vec![
            0,
            1,
            (1 << 52) - 1,
            1 << 52,
            (1 << 53) + 1,
            (1 << 63) - 1,
            1 << 63,
            (1 << 63) + 1,
            u64::MAX as u128,
            (u64::MAX as u128) + 1,
            1 << 64,
            (1 << 64) + 12345,
            (1 << 100) + 999,
            u128::MAX,
        ];
        for v in interesting {
            let fix = FixUint::from_u128(v);
            let big = BigUint::from(v);
            assert_eq!(fix.to_f64().to_bits(), big.to_f64().to_bits(), "to_f64({v})");
            assert_eq!(
                fix.to_bigfloat(),
                BigFloat::from_biguint(&big),
                "to_bigfloat({v})"
            );
        }
    }

    #[test]
    fn slow_path_forces_big_representation() {
        set_slow_path(true);
        let v = FixUint::from_u64(7);
        assert!(matches!(v.0, Repr::Big(_)));
        let w = &v * &v;
        assert!(matches!(w.0, Repr::Big(_)));
        assert_eq!(w.to_u64(), Some(49));
        set_slow_path(false);
        assert!(matches!(FixUint::from_u64(7).0, Repr::Small(7)));
    }

    #[test]
    fn mixed_representation_equality_is_by_value() {
        set_slow_path(true);
        let big = FixUint::from_u64(42);
        set_slow_path(false);
        let small = FixUint::from_u64(42);
        assert_eq!(big, small);
        assert_ne!(big, FixUint::from_u64(43));
    }
}
