//! Arbitrary-precision signed integers (sign–magnitude over [`BigUint`]).

use crate::{BigUint, ParseNumError};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Rem, Sub};
use std::str::FromStr;

/// Sign of a [`BigInt`]. Zero is always [`Sign::Zero`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Positive,
}

impl Sign {
    fn flip(self) -> Sign {
        match self {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        }
    }

    fn mul(self, other: Sign) -> Sign {
        match (self, other) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (a, b) if a == b => Sign::Positive,
            _ => Sign::Negative,
        }
    }
}

/// An arbitrary-precision signed integer.
///
/// Used as the numerator type of [`crate::Rational`]; most of the PQE
/// pipeline works with non-negative quantities, but rational arithmetic
/// (e.g. `1 − π(f)`) needs signed intermediates.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl BigInt {
    /// The value `0`.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Zero,
            mag: BigUint::zero(),
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigInt {
            sign: Sign::Positive,
            mag: BigUint::one(),
        }
    }

    /// Builds a `BigInt` from a sign and magnitude (canonicalizing zero).
    pub fn from_sign_magnitude(sign: Sign, mag: BigUint) -> Self {
        if mag.is_zero() {
            BigInt::zero()
        } else {
            assert!(sign != Sign::Zero, "non-zero magnitude with Zero sign");
            BigInt { sign, mag }
        }
    }

    /// The sign of this value.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude `|self|`.
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// Consumes `self`, returning the magnitude.
    pub fn into_magnitude(self) -> BigUint {
        self.mag
    }

    /// Returns `true` iff `self == 0`.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Returns `true` iff `self > 0`.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }

    /// Returns `true` iff `self < 0`.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt::from_sign_magnitude(
            if self.is_zero() { Sign::Zero } else { Sign::Positive },
            self.mag.clone(),
        )
    }

    /// `self^exp` by binary exponentiation.
    pub fn pow(&self, exp: u32) -> BigInt {
        let mag = self.mag.pow(exp);
        let sign = if exp == 0 {
            Sign::Positive
        } else if self.sign == Sign::Negative && exp % 2 == 1 {
            Sign::Negative
        } else if self.is_zero() {
            Sign::Zero
        } else {
            Sign::Positive
        };
        BigInt::from_sign_magnitude(sign, mag)
    }

    /// Converts to `i64` if the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        let m = self.mag.to_u128()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => (m <= i64::MAX as u128).then_some(m as i64),
            Sign::Negative => (m <= i64::MAX as u128 + 1).then_some((m as i128).wrapping_neg() as i64),
        }
    }

    /// Best-effort `f64` conversion (reporting only).
    pub fn to_f64(&self) -> f64 {
        let m = self.mag.to_f64();
        if self.is_negative() {
            -m
        } else {
            m
        }
    }
}

impl From<BigUint> for BigInt {
    fn from(mag: BigUint) -> Self {
        let sign = if mag.is_zero() { Sign::Zero } else { Sign::Positive };
        BigInt::from_sign_magnitude(sign, mag)
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt::from_sign_magnitude(Sign::Positive, BigUint::from(v as u64)),
            Ordering::Less => {
                BigInt::from_sign_magnitude(Sign::Negative, BigUint::from(v.unsigned_abs()))
            }
        }
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        BigInt::from(BigUint::from(v))
    }
}

impl From<u32> for BigInt {
    fn from(v: u32) -> Self {
        BigInt::from(BigUint::from(v))
    }
}

impl From<i32> for BigInt {
    fn from(v: i32) -> Self {
        BigInt::from(v as i64)
    }
}

impl FromStr for BigInt {
    type Err = ParseNumError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(rest) = s.strip_prefix('-') {
            let mag = BigUint::from_decimal(rest)?;
            let sign = if mag.is_zero() { Sign::Zero } else { Sign::Negative };
            Ok(BigInt::from_sign_magnitude(sign, mag))
        } else {
            Ok(BigInt::from(BigUint::from_decimal(
                s.strip_prefix('+').unwrap_or(s),
            )?))
        }
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        use Sign::*;
        match (self.sign, other.sign) {
            (Negative, Negative) => other.mag.cmp(&self.mag),
            (Negative, _) => Ordering::Less,
            (Zero, Negative) => Ordering::Greater,
            (Zero, Zero) => Ordering::Equal,
            (Zero, Positive) => Ordering::Less,
            (Positive, Positive) => self.mag.cmp(&other.mag),
            (Positive, _) => Ordering::Greater,
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt {
            sign: self.sign.flip(),
            mag: self.mag.clone(),
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt {
            sign: self.sign.flip(),
            mag: self.mag,
        }
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        use Sign::*;
        match (self.sign, rhs.sign) {
            (Zero, _) => rhs.clone(),
            (_, Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_sign_magnitude(a, &self.mag + &rhs.mag),
            _ => match self.mag.cmp(&rhs.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    BigInt::from_sign_magnitude(self.sign, &self.mag - &rhs.mag)
                }
                Ordering::Less => BigInt::from_sign_magnitude(rhs.sign, &rhs.mag - &self.mag),
            },
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        BigInt::from_sign_magnitude(self.sign.mul(rhs.sign), &self.mag * &rhs.mag)
    }
}

/// Truncated division (rounds toward zero, like Rust's `/` on integers).
impl Div for &BigInt {
    type Output = BigInt;
    fn div(self, rhs: &BigInt) -> BigInt {
        let (q, _) = self.mag.divrem(&rhs.mag);
        BigInt::from_sign_magnitude(self.sign.mul(rhs.sign), q)
    }
}

/// Remainder with the sign of the dividend (like Rust's `%`).
impl Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, rhs: &BigInt) -> BigInt {
        let (_, r) = self.mag.divrem(&rhs.mag);
        let sign = if r.is_zero() { Sign::Zero } else { self.sign };
        BigInt::from_sign_magnitude(sign, r)
    }
}

macro_rules! forward_value_ops_int {
    ($($trait:ident :: $m:ident),*) => {$(
        impl $trait for BigInt {
            type Output = BigInt;
            fn $m(self, rhs: BigInt) -> BigInt { $trait::$m(&self, &rhs) }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $m(self, rhs: &BigInt) -> BigInt { $trait::$m(&self, rhs) }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $m(self, rhs: BigInt) -> BigInt { $trait::$m(self, &rhs) }
        }
    )*};
}
forward_value_ops_int!(Add::add, Sub::sub, Mul::mul, Div::div, Rem::rem);

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "-{}", self.mag)
        } else {
            write!(f, "{}", self.mag)
        }
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(s: &str) -> BigInt {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(int("-123").to_string(), "-123");
        assert_eq!(int("+123").to_string(), "123");
        assert_eq!(int("-0").to_string(), "0");
        assert_eq!(int("-0").sign(), Sign::Zero);
    }

    #[test]
    fn signed_addition_cases() {
        assert_eq!((int("5") + int("-3")).to_string(), "2");
        assert_eq!((int("3") + int("-5")).to_string(), "-2");
        assert_eq!((int("-3") + int("-5")).to_string(), "-8");
        assert_eq!((int("5") + int("-5")).to_string(), "0");
        assert_eq!((int("0") + int("-5")).to_string(), "-5");
    }

    #[test]
    fn signed_subtraction() {
        assert_eq!((int("3") - int("10")).to_string(), "-7");
        assert_eq!((int("-3") - int("-10")).to_string(), "7");
    }

    #[test]
    fn signed_multiplication() {
        assert_eq!((int("-4") * int("6")).to_string(), "-24");
        assert_eq!((int("-4") * int("-6")).to_string(), "24");
        assert_eq!((int("-4") * int("0")).to_string(), "0");
    }

    #[test]
    fn truncated_div_rem() {
        assert_eq!((int("7") / int("2")).to_string(), "3");
        assert_eq!((int("-7") / int("2")).to_string(), "-3");
        assert_eq!((int("7") % int("-2")).to_string(), "1");
        assert_eq!((int("-7") % int("2")).to_string(), "-1");
    }

    #[test]
    fn pow_signs() {
        assert_eq!(int("-2").pow(3).to_string(), "-8");
        assert_eq!(int("-2").pow(4).to_string(), "16");
        assert_eq!(int("-2").pow(0).to_string(), "1");
        assert_eq!(int("0").pow(5).to_string(), "0");
    }

    #[test]
    fn ordering_across_signs() {
        assert!(int("-10") < int("-9"));
        assert!(int("-1") < int("0"));
        assert!(int("0") < int("1"));
        assert!(int("9") < int("10"));
    }

    #[test]
    fn to_i64_bounds() {
        assert_eq!(int("9223372036854775807").to_i64(), Some(i64::MAX));
        assert_eq!(int("-9223372036854775808").to_i64(), Some(i64::MIN));
        assert_eq!(int("9223372036854775808").to_i64(), None);
        assert_eq!(int("-9223372036854775809").to_i64(), None);
    }
}
