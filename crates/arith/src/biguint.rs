//! Arbitrary-precision unsigned integers.
//!
//! Little-endian `u32` limbs with the invariant that the highest limb is
//! non-zero (the canonical representation of zero is an empty limb vector).
//! All arithmetic uses `u64` intermediates, so no `unsafe` and no overflow.

use crate::ParseNumError;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, BitAnd, Div, Mul, MulAssign, Rem, Shl, Shr, Sub, SubAssign};
use std::str::FromStr;

const BASE_BITS: u32 = 32;

/// An arbitrary-precision unsigned integer.
///
/// The workhorse number type of the workspace: tree counts, reliability
/// counts, and probability numerators/denominators are all `BigUint`s.
///
/// ```
/// use pqe_arith::BigUint;
/// let a = BigUint::from(u64::MAX);
/// let b = &a * &a;
/// assert_eq!(b.to_string(), "340282366920938463426481119284349108225");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; no trailing zero limb.
    limbs: Vec<u32>,
}

impl BigUint {
    /// The value `0`.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Returns `true` iff `self == 0`.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` iff `self == 1`.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Constructs a value from little-endian `u32` limbs (trailing zeros ok).
    pub fn from_limbs(mut limbs: Vec<u32>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// The number of significant bits (`0` has bit-length `0`).
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => {
                (self.limbs.len() as u64 - 1) * BASE_BITS as u64
                    + (BASE_BITS - top.leading_zeros()) as u64
            }
        }
    }

    /// Returns bit `i` (little-endian position), `false` beyond the length.
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / BASE_BITS as u64) as usize;
        let off = (i % BASE_BITS as u64) as u32;
        self.limbs.get(limb).is_some_and(|&l| (l >> off) & 1 == 1)
    }

    /// `⌊log₂(self)⌋`. Panics on zero.
    pub fn log2_floor(&self) -> u64 {
        assert!(!self.is_zero(), "log2 of zero");
        self.bits() - 1
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some(self.limbs[0] as u64 | (self.limbs[1] as u64) << 32),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        if self.limbs.len() > 4 {
            return None;
        }
        let mut v: u128 = 0;
        for (i, &l) in self.limbs.iter().enumerate() {
            v |= (l as u128) << (32 * i);
        }
        Some(v)
    }

    /// Correctly rounded (nearest-even) conversion to `f64`; values beyond
    /// the finite range map to `f64::INFINITY`. Used only for reporting,
    /// never for logic.
    pub fn to_f64(&self) -> f64 {
        let bits = self.bits();
        if bits == 0 {
            return 0.0;
        }
        if bits <= 64 {
            return self.to_u64().unwrap() as f64;
        }
        // Take the top 64 bits — bit 63 is set, so bit 0 of the window sits
        // below f64's 53-bit mantissa and only ever participates in
        // tie-breaking. Folding every dropped low bit into it as a sticky
        // bit makes the (correctly rounded) u64 → f64 cast round the *whole*
        // integer to nearest-even; the power-of-two scale is exact.
        let shift = bits - 64;
        let mut top = (self >> shift).to_u64().unwrap();
        let whole = (shift / BASE_BITS as u64) as usize;
        let rem = (shift % BASE_BITS as u64) as u32;
        let sticky = self.limbs[..whole].iter().any(|&l| l != 0)
            || (rem > 0 && self.limbs[whole] & ((1u32 << rem) - 1) != 0);
        if sticky {
            top |= 1;
        }
        if shift > f64::MAX_EXP as u64 {
            return f64::INFINITY;
        }
        (top as f64) * 2f64.powi(shift as i32)
    }

    /// `self^exp` by binary exponentiation.
    pub fn pow(&self, mut exp: u32) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Greatest common divisor (binary GCD: shifts and subtractions only).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let az = a.trailing_zeros();
        let bz = b.trailing_zeros();
        let common = az.min(bz);
        a = &a >> az;
        b = &b >> bz;
        loop {
            debug_assert!(a.bit(0) && b.bit(0));
            match a.cmp(&b) {
                Ordering::Equal => break,
                Ordering::Less => std::mem::swap(&mut a, &mut b),
                Ordering::Greater => {}
            }
            a = &a - &b;
            let tz = a.trailing_zeros();
            a = &a >> tz;
        }
        &a << common
    }

    /// Number of trailing zero bits. Panics on zero.
    pub fn trailing_zeros(&self) -> u64 {
        assert!(!self.is_zero(), "trailing_zeros of zero");
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return i as u64 * BASE_BITS as u64 + l.trailing_zeros() as u64;
            }
        }
        unreachable!()
    }

    /// Checked subtraction: `None` if `other > self`.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            None
        } else {
            Some(self - other)
        }
    }

    /// Simultaneous quotient and remainder. Panics on division by zero.
    pub fn divrem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.divrem_small(divisor.limbs[0]);
            return (q, BigUint::from(r));
        }
        // Both operands fit u64 (≤ 2 limbs): hardware division beats Knuth's
        // normalize/shift machinery.
        if let (Some(a), Some(b)) = (self.to_u64(), divisor.to_u64()) {
            return (BigUint::from(a / b), BigUint::from(a % b));
        }
        self.divrem_knuth(divisor)
    }

    /// Division by a single limb; returns `(quotient, remainder)`.
    fn divrem_small(&self, d: u32) -> (BigUint, u32) {
        debug_assert!(d != 0);
        let d = d as u64;
        let mut rem: u64 = 0;
        let mut q = vec![0u32; self.limbs.len()];
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 32) | self.limbs[i] as u64;
            q[i] = (cur / d) as u32;
            rem = cur % d;
        }
        (BigUint::from_limbs(q), rem as u32)
    }

    /// Knuth Algorithm D (TAOCP vol. 2, 4.3.1) for multi-limb divisors.
    fn divrem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        let shift = divisor.limbs.last().unwrap().leading_zeros() as u64;
        let v = divisor << shift;
        let mut u = (self << shift).limbs;
        let n = v.limbs.len();
        let m = u.len() - n;
        u.push(0); // u has m + n + 1 limbs
        let vn = &v.limbs;
        let mut q = vec![0u32; m + 1];
        let b: u64 = 1 << 32;

        for j in (0..=m).rev() {
            let top = ((u[j + n] as u64) << 32) | u[j + n - 1] as u64;
            let mut qhat = top / vn[n - 1] as u64;
            let mut rhat = top % vn[n - 1] as u64;
            while qhat >= b
                || qhat * vn[n - 2] as u64 > (rhat << 32) | u[j + n - 2] as u64
            {
                qhat -= 1;
                rhat += vn[n - 1] as u64;
                if rhat >= b {
                    break;
                }
            }
            // Multiply-subtract qhat * v from u[j .. j+n+1].
            let mut borrow: i64 = 0;
            let mut carry: u64 = 0;
            for i in 0..n {
                let p = qhat * vn[i] as u64 + carry;
                carry = p >> 32;
                let t = u[j + i] as i64 - borrow - (p & 0xFFFF_FFFF) as i64;
                u[j + i] = t as u32; // wraps modulo 2^32
                borrow = if t < 0 { 1 } else { 0 };
            }
            let t = u[j + n] as i64 - borrow - carry as i64;
            u[j + n] = t as u32;
            if t < 0 {
                // qhat was one too large: add back.
                qhat -= 1;
                let mut carry: u64 = 0;
                for i in 0..n {
                    let s = u[j + i] as u64 + vn[i] as u64 + carry;
                    u[j + i] = s as u32;
                    carry = s >> 32;
                }
                u[j + n] = (u[j + n] as u64).wrapping_add(carry) as u32;
            }
            q[j] = qhat as u32;
        }
        let rem = BigUint::from_limbs(u[..n].to_vec());
        (BigUint::from_limbs(q), &rem >> shift)
    }

    /// Parses a decimal string.
    pub fn from_decimal(s: &str) -> Result<BigUint, ParseNumError> {
        if s.is_empty() {
            return Err(ParseNumError::empty());
        }
        let mut acc = BigUint::zero();
        let ten_pow9 = BigUint::from(1_000_000_000u32);
        let bytes = s.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let chunk_len = (bytes.len() - i).min(9);
            let chunk = &s[i..i + chunk_len];
            let mut v: u32 = 0;
            for c in chunk.chars() {
                let d = c.to_digit(10).ok_or_else(|| ParseNumError::invalid(c))?;
                v = v * 10 + d;
            }
            let scale = if chunk_len == 9 {
                ten_pow9.clone()
            } else {
                BigUint::from(10u32.pow(chunk_len as u32))
            };
            acc = &(&acc * &scale) + &BigUint::from(v);
            i += chunk_len;
        }
        Ok(acc)
    }
}

// ---------------------------------------------------------------------------
// Conversions
// ---------------------------------------------------------------------------

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from_limbs(vec![v])
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_limbs(vec![v as u32, (v >> 32) as u32])
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_limbs(vec![
            v as u32,
            (v >> 32) as u32,
            (v >> 64) as u32,
            (v >> 96) as u32,
        ])
    }
}

impl From<usize> for BigUint {
    fn from(v: usize) -> Self {
        BigUint::from(v as u64)
    }
}

impl FromStr for BigUint {
    type Err = ParseNumError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BigUint::from_decimal(s)
    }
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

// ---------------------------------------------------------------------------
// Core limb algorithms
// ---------------------------------------------------------------------------

#[allow(clippy::needless_range_loop)]
fn add_limbs(a: &[u32], b: &[u32]) -> Vec<u32> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry: u64 = 0;
    for i in 0..long.len() {
        let s = long[i] as u64 + short.get(i).copied().unwrap_or(0) as u64 + carry;
        out.push(s as u32);
        carry = s >> 32;
    }
    if carry != 0 {
        out.push(carry as u32);
    }
    out
}

/// Requires `a >= b` limb-wise value.
#[allow(clippy::needless_range_loop)]
fn sub_limbs(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len());
    let mut borrow: i64 = 0;
    for i in 0..a.len() {
        let d = a[i] as i64 - b.get(i).copied().unwrap_or(0) as i64 - borrow;
        if d < 0 {
            out.push((d + (1i64 << 32)) as u32);
            borrow = 1;
        } else {
            out.push(d as u32);
            borrow = 0;
        }
    }
    debug_assert_eq!(borrow, 0, "subtraction underflow");
    out
}

/// Multiplication by a single limb: one carry pass, no `a.len() + 1`-sized
/// zero-then-accumulate buffer. The multiplier gadget and run-DP hot paths
/// multiply by small constants constantly, so this path dominates.
fn mul_small(a: &[u32], m: u32) -> Vec<u32> {
    if m == 0 || a.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(a.len() + 1);
    let mut carry: u64 = 0;
    for &ai in a {
        let cur = ai as u64 * m as u64 + carry;
        out.push(cur as u32);
        carry = cur >> 32;
    }
    if carry != 0 {
        out.push(carry as u32);
    }
    out
}

fn mul_limbs(a: &[u32], b: &[u32]) -> Vec<u32> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    if a.len() == 1 {
        return mul_small(b, a[0]);
    }
    if b.len() == 1 {
        return mul_small(a, b[0]);
    }
    let mut out = vec![0u32; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry: u64 = 0;
        for (j, &bj) in b.iter().enumerate() {
            let cur = out[i + j] as u64 + ai as u64 * bj as u64 + carry;
            out[i + j] = cur as u32;
            carry = cur >> 32;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let cur = out[k] as u64 + carry;
            out[k] = cur as u32;
            carry = cur >> 32;
            k += 1;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Operator impls (by-ref canonical; by-value delegates)
// ---------------------------------------------------------------------------

impl Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        BigUint::from_limbs(add_limbs(&self.limbs, &rhs.limbs))
    }
}

impl Sub for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        assert!(self >= rhs, "BigUint subtraction underflow");
        BigUint::from_limbs(sub_limbs(&self.limbs, &rhs.limbs))
    }
}

impl Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        BigUint::from_limbs(mul_limbs(&self.limbs, &rhs.limbs))
    }
}

impl Div for &BigUint {
    type Output = BigUint;
    fn div(self, rhs: &BigUint) -> BigUint {
        self.divrem(rhs).0
    }
}

impl Rem for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.divrem(rhs).1
    }
}

impl Shl<u64> for &BigUint {
    type Output = BigUint;
    fn shl(self, shift: u64) -> BigUint {
        if self.is_zero() || shift == 0 {
            return self.clone();
        }
        let limb_shift = (shift / BASE_BITS as u64) as usize;
        let bit_shift = (shift % BASE_BITS as u64) as u32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry: u32 = 0;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (BASE_BITS - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }
}

impl Shr<u64> for &BigUint {
    type Output = BigUint;
    fn shr(self, shift: u64) -> BigUint {
        let limb_shift = (shift / BASE_BITS as u64) as usize;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = (shift % BASE_BITS as u64) as u32;
        let src = &self.limbs[limb_shift..];
        if bit_shift == 0 {
            return BigUint::from_limbs(src.to_vec());
        }
        let mut out = Vec::with_capacity(src.len());
        for i in 0..src.len() {
            let hi = src.get(i + 1).copied().unwrap_or(0);
            out.push((src[i] >> bit_shift) | (hi << (BASE_BITS - bit_shift)));
        }
        BigUint::from_limbs(out)
    }
}

impl BitAnd for &BigUint {
    type Output = BigUint;
    fn bitand(self, rhs: &BigUint) -> BigUint {
        let n = self.limbs.len().min(rhs.limbs.len());
        let out = (0..n).map(|i| self.limbs[i] & rhs.limbs[i]).collect();
        BigUint::from_limbs(out)
    }
}

macro_rules! forward_value_ops {
    ($($trait:ident :: $m:ident),*) => {$(
        impl $trait for BigUint {
            type Output = BigUint;
            fn $m(self, rhs: BigUint) -> BigUint { $trait::$m(&self, &rhs) }
        }
        impl $trait<&BigUint> for BigUint {
            type Output = BigUint;
            fn $m(self, rhs: &BigUint) -> BigUint { $trait::$m(&self, rhs) }
        }
        impl $trait<BigUint> for &BigUint {
            type Output = BigUint;
            fn $m(self, rhs: BigUint) -> BigUint { $trait::$m(self, &rhs) }
        }
    )*};
}
forward_value_ops!(Add::add, Sub::sub, Mul::mul, Div::div, Rem::rem);

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        *self = &*self + rhs;
    }
}
impl AddAssign for BigUint {
    fn add_assign(&mut self, rhs: BigUint) {
        *self += &rhs;
    }
}
impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        *self = &*self - rhs;
    }
}
impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        *self = &*self * rhs;
    }
}

// ---------------------------------------------------------------------------
// Formatting
// ---------------------------------------------------------------------------

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.divrem_small(1_000_000_000);
            chunks.push(r);
            cur = q;
        }
        let mut s = chunks.pop().unwrap().to_string();
        for c in chunks.iter().rev() {
            s.push_str(&format!("{c:09}"));
        }
        f.pad_integral(true, "", &s)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(s: &str) -> BigUint {
        BigUint::from_decimal(s).unwrap()
    }

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(BigUint::one().to_string(), "1");
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
    }

    #[test]
    fn add_with_carry_chain() {
        let a = BigUint::from(u64::MAX);
        let one = BigUint::one();
        assert_eq!((&a + &one).to_string(), "18446744073709551616");
    }

    #[test]
    fn sub_borrow_chain() {
        let a = big("18446744073709551616");
        assert_eq!((&a - &BigUint::one()).to_u64(), Some(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = &BigUint::one() - &BigUint::from(2u32);
    }

    #[test]
    fn mul_known_values() {
        assert_eq!(
            (&big("123456789012345678901234567890") * &big("987654321098765432109876543210"))
                .to_string(),
            "121932631137021795226185032733622923332237463801111263526900"
        );
        assert!((&BigUint::zero() * &big("999")).is_zero());
    }

    #[test]
    fn divrem_small_divisor() {
        let (q, r) = big("1000000000000000000000").divrem(&BigUint::from(7u32));
        assert_eq!(q.to_string(), "142857142857142857142");
        assert_eq!(r.to_u64(), Some(6));
    }

    #[test]
    fn divrem_multi_limb_reconstructs() {
        let a = big("340282366920938463463374607431768211455999999999");
        let b = big("18446744073709551629");
        let (q, r) = a.divrem(&b);
        assert!(r < b);
        assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn divrem_knuth_addback_path() {
        // Crafted to stress the qhat correction loop: divisor with high limb
        // pattern that forces estimate adjustment.
        let a = (&BigUint::from(u128::MAX) << 64) + BigUint::from(u128::MAX);
        let b = (&BigUint::from(u64::MAX) << 32) + BigUint::from(u64::MAX);
        let (q, r) = a.divrem(&b);
        assert!(r < b);
        assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn pow_and_log2() {
        let p = BigUint::from(2u32).pow(200);
        assert_eq!(p.log2_floor(), 200);
        assert_eq!(p.bits(), 201);
        assert_eq!(BigUint::from(3u32).pow(5).to_u64(), Some(243));
        assert_eq!(BigUint::from(7u32).pow(0).to_u64(), Some(1));
    }

    #[test]
    fn shifts_roundtrip() {
        let a = big("123456789123456789123456789");
        assert_eq!(&(&a << 77) >> 77, a);
        assert_eq!((&a >> 1000).to_string(), "0");
        assert_eq!((&BigUint::zero() << 13).to_string(), "0");
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(
            BigUint::from(48u32).gcd(&BigUint::from(36u32)).to_u64(),
            Some(12)
        );
        assert_eq!(BigUint::zero().gcd(&BigUint::from(5u32)).to_u64(), Some(5));
        assert_eq!(BigUint::from(5u32).gcd(&BigUint::zero()).to_u64(), Some(5));
        let a = big("123456789012345678901234567890");
        assert_eq!(a.gcd(&a), a);
    }

    #[test]
    fn gcd_large_coprime() {
        // 2^127 - 1 is a Mersenne prime, coprime with a power of two.
        let m127 = &BigUint::from(2u32).pow(127) - &BigUint::one();
        let p = BigUint::from(2u32).pow(100);
        assert!(m127.gcd(&p).is_one());
    }

    #[test]
    fn decimal_roundtrip() {
        for s in [
            "0",
            "1",
            "999999999",
            "1000000000",
            "123456789012345678901234567890123456789",
        ] {
            assert_eq!(big(s).to_string(), s);
        }
        assert!(BigUint::from_decimal("12a").is_err());
        assert!(BigUint::from_decimal("").is_err());
    }

    #[test]
    fn cmp_ordering() {
        assert!(big("100") < big("101"));
        assert!(big("18446744073709551616") > big("18446744073709551615"));
        assert_eq!(big("42").cmp(&big("42")), Ordering::Equal);
    }

    #[test]
    fn to_f64_reasonable() {
        assert_eq!(BigUint::from(12345u32).to_f64(), 12345.0);
        let p = BigUint::from(2u32).pow(100);
        let rel = (p.to_f64() - 2f64.powi(100)).abs() / 2f64.powi(100);
        assert!(rel < 1e-9);
    }

    #[test]
    fn bit_access() {
        let v = BigUint::from(0b1010u32);
        assert!(!v.bit(0));
        assert!(v.bit(1));
        assert!(!v.bit(2));
        assert!(v.bit(3));
        assert!(!v.bit(64));
    }

    #[test]
    fn trailing_zeros_counts() {
        assert_eq!((&BigUint::one() << 70).trailing_zeros(), 70);
        assert_eq!(BigUint::from(12u32).trailing_zeros(), 2);
    }
}
