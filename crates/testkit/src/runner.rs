//! The property runner: corpus replay, random exploration, shrinking,
//! and failure persistence.

use crate::gen::Gen;
use crate::source::Source;
use pqe_rand::rngs::StdRng;
use pqe_rand::SeedableRng;
use std::fmt::Debug;
use std::fs;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum CaseFail {
    /// Precondition unmet — the case is skipped, not failed
    /// (see [`prop_assume!`](crate::prop_assume)).
    Discard,
    /// The property is violated, with a message.
    Fail(String),
}

impl CaseFail {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        CaseFail::Fail(msg.into())
    }
}

/// What a property closure returns per case.
pub type CaseResult = Result<(), CaseFail>;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of accepted (non-discarded) random cases to run.
    pub cases: u32,
    /// Base seed for the random phase. Fixed by default so CI is
    /// deterministic; override with `PQE_TESTKIT_SEED=<u64>` to explore.
    pub seed: u64,
    /// Cap on shrink candidate evaluations after a failure.
    pub max_shrink_attempts: u32,
    /// Regression corpus file (entries replayed before random cases; new
    /// shrunk failures are appended).
    pub corpus: Option<PathBuf>,
}

impl Config {
    /// A config running `cases` random cases with defaults otherwise.
    pub fn cases(cases: u32) -> Self {
        let seed = std::env::var("PQE_TESTKIT_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5eed_7e57_0001);
        Config {
            cases,
            seed,
            max_shrink_attempts: 4096,
            corpus: None,
        }
    }

    /// Attaches a regression corpus file (path relative to the crate root,
    /// which is the working directory of `cargo test`).
    pub fn with_corpus(mut self, path: impl Into<PathBuf>) -> Self {
        self.corpus = Some(path.into());
        self
    }
}

enum Outcome {
    Pass,
    Discard,
    Fail(String),
}

fn run_once<G, F>(gen: &G, prop: &F, bytes: &[u8]) -> Outcome
where
    G: Gen,
    F: Fn(&G::Value) -> CaseResult,
{
    let result = catch_unwind(AssertUnwindSafe(|| {
        let value = gen.generate(&mut Source::replay(bytes));
        prop(&value)
    }));
    match result {
        Ok(Ok(())) => Outcome::Pass,
        Ok(Err(CaseFail::Discard)) => Outcome::Discard,
        Ok(Err(CaseFail::Fail(msg))) => Outcome::Fail(msg),
        Err(panic) => Outcome::Fail(format!("panicked: {}", panic_message(&panic))),
    }
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Checks a property: replays `name`'s corpus entries, then runs
/// `cfg.cases` random cases, shrinking and reporting the first failure.
///
/// Panics (failing the enclosing `#[test]`) on the first violated case,
/// with the minimal value, its byte transcript, and the corpus line that
/// pins it.
pub fn check<G, F>(name: &str, cfg: &Config, gen: &G, prop: F)
where
    G: Gen,
    G::Value: Debug,
    F: Fn(&G::Value) -> CaseResult,
{
    // Phase 1: pinned regressions.
    for (idx, bytes) in corpus_entries(cfg, name) {
        if let Outcome::Fail(msg) = run_once(gen, &prop, &bytes) {
            let value = gen.generate(&mut Source::replay(&bytes));
            panic!(
                "[{name}] pinned corpus case #{idx} fails: {msg}\n\
                 value: {value:?}\n\
                 bytes: {}",
                hex_encode(&bytes)
            );
        }
    }

    // Phase 2: random exploration.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ fnv1a(name.as_bytes()));
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let max_attempts = cfg.cases as u64 * 20 + 100;
    while accepted < cfg.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "[{name}] discarded too many cases ({accepted}/{} accepted after {attempts} attempts) — \
             weaken the prop_assume! preconditions",
            cfg.cases
        );
        let mut src = Source::record(&mut rng);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let value = gen.generate(&mut src);
            prop(&value)
        }));
        // The mutable borrow of `src` ends with the closure, panic or not,
        // so the transcript survives and the case can shrink.
        let bytes = src.transcript().to_vec();
        let outcome = match result {
            Ok(Ok(())) => Outcome::Pass,
            Ok(Err(CaseFail::Discard)) => Outcome::Discard,
            Ok(Err(CaseFail::Fail(msg))) => Outcome::Fail(msg),
            Err(panic) => Outcome::Fail(format!("panicked: {}", panic_message(&panic))),
        };
        match outcome {
            Outcome::Pass => accepted += 1,
            Outcome::Discard => {}
            Outcome::Fail(first_msg) => {
                fail_and_report(name, cfg, gen, &prop, bytes, first_msg);
            }
        }
    }
}

/// Shrinks, persists, and panics with the final report.
fn fail_and_report<G, F>(
    name: &str,
    cfg: &Config,
    gen: &G,
    prop: &F,
    bytes: Vec<u8>,
    first_msg: String,
) -> !
where
    G: Gen,
    G::Value: Debug,
    F: Fn(&G::Value) -> CaseResult,
{
    let shrunk = shrink(gen, prop, bytes, cfg.max_shrink_attempts);
    let value = gen.generate(&mut Source::replay(&shrunk));
    let final_msg = match run_once(gen, prop, &shrunk) {
        Outcome::Fail(msg) => msg,
        // Shrinking only keeps failing candidates, so this stays the
        // original message only if re-running goes green (flaky property).
        _ => format!("(unstable failure; original: {first_msg})"),
    };
    let hex = hex_encode(&shrunk);
    let corpus_note = match &cfg.corpus {
        Some(path) => {
            let line = format!("{name}: {hex}\n");
            match fs::OpenOptions::new().create(true).append(true).open(path) {
                Ok(mut f) => {
                    let _ = f.write_all(line.as_bytes());
                    format!("pinned to {}", path.display())
                }
                Err(e) => format!("could not persist to {}: {e}", path.display()),
            }
        }
        None => "add a corpus via Config::with_corpus to pin this case".to_string(),
    };
    panic!(
        "[{name}] property failed after shrinking: {final_msg}\n\
         minimal value: {value:?}\n\
         bytes: {hex}\n\
         {corpus_note}"
    );
}

/// Byte-level minimization: chunk deletion, zeroing, and per-byte descent,
/// looping to a fixpoint under an attempt budget. Every kept candidate
/// still fails the property.
fn shrink<G, F>(gen: &G, prop: &F, start: Vec<u8>, budget: u32) -> Vec<u8>
where
    G: Gen,
    F: Fn(&G::Value) -> CaseResult,
{
    let mut best = start;
    let mut spent = 0u32;
    let still_fails = |candidate: &[u8], spent: &mut u32| -> bool {
        *spent += 1;
        matches!(run_once(gen, prop, candidate), Outcome::Fail(_))
    };

    // Trailing zeros are equivalent to absence (replay pads with zeros).
    while best.last() == Some(&0) {
        best.pop();
    }

    let mut improved = true;
    while improved && spent < budget {
        improved = false;

        // 1. Cut the tail: big bites first.
        let mut keep = best.len() / 2;
        while keep < best.len() && spent < budget {
            let candidate = best[..keep].to_vec();
            if still_fails(&candidate, &mut spent) {
                best = candidate;
                improved = true;
                keep = best.len() / 2;
            } else {
                keep += (best.len() - keep).div_ceil(2).max(1);
            }
        }

        // 2. Delete interior chunks.
        for size in [16usize, 8, 4, 2, 1] {
            let mut i = 0;
            while i + size <= best.len() && spent < budget {
                let mut candidate = best.clone();
                candidate.drain(i..i + size);
                if still_fails(&candidate, &mut spent) {
                    best = candidate;
                    improved = true;
                } else {
                    i += size;
                }
            }
        }

        // 3. Zero chunks (simplest values without changing structure).
        for size in [8usize, 4, 1] {
            let mut i = 0;
            while i + size <= best.len() && spent < budget {
                if best[i..i + size].iter().all(|&b| b == 0) {
                    i += size;
                    continue;
                }
                let mut candidate = best.clone();
                candidate[i..i + size].fill(0);
                if still_fails(&candidate, &mut spent) {
                    best = candidate;
                    improved = true;
                }
                i += size;
            }
        }

        // 4. Minimize individual bytes: binary descent toward 0, then
        // single decrements to land exactly on the failure boundary.
        for i in 0..best.len() {
            while best[i] > 0 && spent < budget {
                let smaller = best[i] / 2;
                let mut candidate = best.clone();
                candidate[i] = smaller;
                if still_fails(&candidate, &mut spent) {
                    best = candidate;
                    improved = true;
                } else {
                    break;
                }
            }
            while best[i] > 0 && spent < budget {
                let mut candidate = best.clone();
                candidate[i] -= 1;
                if still_fails(&candidate, &mut spent) {
                    best = candidate;
                    improved = true;
                } else {
                    break;
                }
            }
        }

        while best.last() == Some(&0) {
            best.pop();
        }
    }
    best
}

fn corpus_entries(cfg: &Config, name: &str) -> Vec<(usize, Vec<u8>)> {
    let Some(path) = &cfg.corpus else {
        return Vec::new();
    };
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((entry_name, hex)) = line.split_once(':') else {
            panic!(
                "{}:{}: corpus line is not `name: hexbytes`",
                path.display(),
                lineno + 1
            );
        };
        if entry_name.trim() != name {
            continue;
        }
        match hex_decode(hex.trim()) {
            Some(bytes) => out.push((lineno + 1, bytes)),
            None => panic!(
                "{}:{}: invalid hex in corpus entry",
                path.display(),
                lineno + 1
            ),
        }
    }
    out
}

fn hex_encode(bytes: &[u8]) -> String {
    if bytes.is_empty() {
        return "(empty)".to_string();
    }
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if s == "(empty)" {
        return Some(Vec::new());
    }
    if s.len() % 2 != 0 {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{any, vec};

    #[test]
    fn passing_property_runs_all_cases() {
        check("always_true", &Config::cases(50), &any::<u64>(), |_| Ok(()));
    }

    #[test]
    fn assume_discards_without_failing() {
        check("assume", &Config::cases(20), &any::<u64>(), |&x| {
            crate::prop_assume!(x % 2 == 0);
            crate::prop_assert!(x % 2 == 0);
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics_with_report() {
        check("fails", &Config::cases(50), &(0u32..1000), |&x| {
            crate::prop_assert!(x < 5, "x = {x}");
            Ok(())
        });
    }

    #[test]
    fn shrinking_finds_the_boundary() {
        // The minimal counterexample to `sum < 100` over vec lengths 0..10
        // of 0..=50 values: shrinking should land at (or very near) a
        // small vector summing just over 99.
        let gen = vec(0u64..=50, 0..10usize);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            check("sum_bound", &Config::cases(200), &gen, |v| {
                let sum: u64 = v.iter().sum();
                crate::prop_assert!(sum < 100, "sum = {sum}");
                Ok(())
            });
        }));
        let msg = panic_message(&caught.expect_err("property must fail"));
        // The shrunk sum must sit in [100, 150): one 0..=50 element above
        // the smallest failing configuration.
        let sum: u64 = msg
            .split("sum = ")
            .nth(1)
            .and_then(|s| s.split('\n').next())
            .unwrap()
            .parse()
            .unwrap();
        assert!((100..150).contains(&sum), "shrunk sum {sum}");
    }

    #[test]
    fn property_panics_are_caught_and_shrunk() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            check("panics", &Config::cases(50), &(0u32..100), |&x| {
                assert!(x < 90, "boom {x}");
                Ok(())
            });
        }));
        let msg = panic_message(&caught.expect_err("must fail"));
        assert!(msg.contains("panicked"), "{msg}");
        assert!(msg.contains("boom 90"), "shrunk to boundary: {msg}");
    }

    #[test]
    fn corpus_roundtrip() {
        assert_eq!(hex_decode("00ff10"), Some(vec![0, 255, 16]));
        assert_eq!(hex_encode(&[0, 255, 16]), "00ff10");
        assert_eq!(hex_decode("(empty)"), Some(Vec::new()));
        assert_eq!(hex_decode("0g"), None);
    }

    #[test]
    fn seeds_differ_across_test_names() {
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
