//! A tiny wall-clock benchmark runner.
//!
//! Replaces the `criterion` harness for the workspace benches: every bench
//! target is a plain `fn main()` (the `[[bench]]` entries set
//! `harness = false`) that builds a [`Runner`] and registers closures. The
//! runner warms each closure up, auto-calibrates an iteration count so a
//! sample takes a measurable slice of time, then reports min / median /
//! mean over a fixed number of samples.
//!
//! Honoring `PQE_BENCH_SAMPLES` / `PQE_BENCH_MIN_SAMPLE_MS` lets CI dial
//! cost down without touching the bench sources. Setting
//! `PQE_BENCH_JSON_DIR` makes [`Runner::finish`] additionally write the
//! suite's stats to `BENCH_<suite>.json` in that directory, so scripts can
//! consume results without scraping stdout.

use std::time::{Duration, Instant};

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Stats {
    pub name: String,
    pub min_ns: f64,
    pub median_ns: f64,
    pub mean_ns: f64,
    pub iters_per_sample: u64,
    pub samples: usize,
}

impl Stats {
    /// One machine-readable JSON object for this benchmark.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\":\"{}\",\"min_ns\":{},\"median_ns\":{},",
                "\"mean_ns\":{},\"iters_per_sample\":{},\"samples\":{}}}"
            ),
            json_escape(&self.name),
            self.min_ns,
            self.median_ns,
            self.mean_ns,
            self.iters_per_sample,
            self.samples,
        )
    }
}

/// Renders a duration in ns with an adaptive unit.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Defeats dead-code elimination of a benchmarked expression's result.
///
/// A portable stand-in for `std::hint::black_box` semantics: the value is
/// passed through a volatile read of its address.
pub fn black_box<T>(value: T) -> T {
    // SAFETY: reading a valid, initialized stack slot.
    unsafe {
        let slot = std::mem::MaybeUninit::new(value);
        std::ptr::read_volatile(slot.as_ptr())
    }
}

/// A free-form named measurement (throughput, a percentile, a rate …)
/// attached to a suite alongside the per-closure [`Stats`].
#[derive(Debug, Clone)]
pub struct Metric {
    pub name: String,
    pub value: f64,
}

impl Metric {
    /// One machine-readable JSON object for this metric.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"value\":{}}}",
            json_escape(&self.name),
            self.value
        )
    }
}

/// Collects and prints benchmark results.
pub struct Runner {
    suite: String,
    samples: usize,
    min_sample: Duration,
    results: Vec<Stats>,
    metrics: Vec<Metric>,
}

impl Runner {
    /// A runner titled `suite`, with defaults (or env overrides) for the
    /// sample count and per-sample time floor.
    pub fn new(suite: impl Into<String>) -> Self {
        let samples = std::env::var("PQE_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(10);
        let min_sample_ms = std::env::var("PQE_BENCH_MIN_SAMPLE_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(20u64);
        Runner {
            suite: suite.into(),
            samples: samples.max(3),
            min_sample: Duration::from_millis(min_sample_ms.max(1)),
            results: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Records a named scalar measured outside the closure harness (e.g.
    /// a load run's throughput or p99). Printed immediately and included
    /// in the JSON document under `"metrics"`.
    pub fn metric(&mut self, name: impl Into<String>, value: f64) {
        let m = Metric { name: name.into(), value };
        println!("  {:<44} {}", m.name, m.value);
        self.metrics.push(m);
    }

    /// Benchmarks `f`, which runs one iteration of the workload per call.
    pub fn bench(&mut self, name: impl Into<String>, mut f: impl FnMut()) {
        let name = name.into();

        // Warmup + calibration: double the batch until one batch crosses
        // the per-sample floor.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            let elapsed = start.elapsed();
            if elapsed >= self.min_sample || iters >= 1 << 30 {
                break;
            }
            // Jump straight toward the target once we have a signal.
            let scale = if elapsed.as_nanos() == 0 {
                8
            } else {
                (self.min_sample.as_nanos() / elapsed.as_nanos()).clamp(2, 8) as u64
            };
            iters = iters.saturating_mul(scale);
        }

        let mut per_iter_ns: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    f();
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));

        let stats = Stats {
            name,
            min_ns: per_iter_ns[0],
            median_ns: per_iter_ns[per_iter_ns.len() / 2],
            mean_ns: per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64,
            iters_per_sample: iters,
            samples: per_iter_ns.len(),
        };
        println!(
            "  {:<44} min {:>12}  median {:>12}  mean {:>12}   ({} it/sample × {})",
            stats.name,
            fmt_ns(stats.min_ns),
            fmt_ns(stats.median_ns),
            fmt_ns(stats.mean_ns),
            stats.iters_per_sample,
            stats.samples,
        );
        self.results.push(stats);
    }

    /// Prints the suite header; call before the first [`bench`](Self::bench).
    pub fn start(&self) {
        println!("== bench suite: {} ==", self.suite);
    }

    /// All collected stats, in registration order.
    pub fn results(&self) -> &[Stats] {
        &self.results
    }

    /// All recorded free-form metrics, in registration order.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// The whole suite as one JSON document:
    /// `{"suite": ..., "config": {...}, "results": [...]}`, plus a
    /// `"metrics"` array when any were recorded. The `config` object
    /// records the calibration knobs the suite actually ran with (sample
    /// count and per-sample time floor, after env overrides), so archived
    /// BENCH_*.json files are comparable at face value.
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self.results.iter().map(Stats::to_json).collect();
        let metrics = if self.metrics.is_empty() {
            String::new()
        } else {
            let m: Vec<String> = self.metrics.iter().map(Metric::to_json).collect();
            format!(",\"metrics\":[{}]", m.join(","))
        };
        format!(
            "{{\"suite\":\"{}\",\"config\":{{\"samples\":{},\"min_sample_ms\":{}}},\"results\":[{}]{}}}\n",
            json_escape(&self.suite),
            self.samples,
            self.min_sample.as_millis(),
            body.join(","),
            metrics
        )
    }

    /// Writes [`Runner::to_json`] to `<dir>/BENCH_<suite>.json`.
    pub fn write_json(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.suite));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Prints a closing summary line. Convention: every bench `main` ends
    /// with this so the harness output is recognizably complete. When
    /// `PQE_BENCH_JSON_DIR` is set, also drops `BENCH_<suite>.json` there.
    pub fn finish(&self) {
        if let Ok(dir) = std::env::var("PQE_BENCH_JSON_DIR") {
            match self.write_json(std::path::Path::new(&dir)) {
                Ok(path) => println!("  wrote {}", path.display()),
                Err(e) => eprintln!("  BENCH json write failed: {e}"),
            }
        }
        println!(
            "== {}: {} benchmark(s) done ==",
            self.suite,
            self.results.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_measures_and_reports() {
        std::env::set_var("PQE_BENCH_SAMPLES", "3");
        std::env::set_var("PQE_BENCH_MIN_SAMPLE_MS", "1");
        let mut r = Runner::new("unit");
        r.start();
        let mut acc = 0u64;
        r.bench("wrapping_sum", || {
            acc = black_box(acc.wrapping_add(black_box(17)));
        });
        r.finish();
        assert_eq!(r.results().len(), 1);
        let s = &r.results()[0];
        assert!(s.min_ns > 0.0 && s.min_ns <= s.mean_ns * 1.5);
        assert!(s.iters_per_sample >= 1);
    }

    #[test]
    fn json_output_is_well_formed() {
        std::env::set_var("PQE_BENCH_SAMPLES", "3");
        std::env::set_var("PQE_BENCH_MIN_SAMPLE_MS", "1");
        let mut r = Runner::new("unit_json");
        r.bench("noop \"quoted\"", || {
            black_box(1u64);
        });
        let json = r.to_json();
        assert!(json.starts_with("{\"suite\":\"unit_json\",\"config\":{"));
        assert!(json.contains("\"config\":{\"samples\":3,\"min_sample_ms\":1}"));
        assert!(json.contains("\"name\":\"noop \\\"quoted\\\"\""));
        assert!(json.contains("\"median_ns\":"));
        assert!(json.trim_end().ends_with("]}"));
        let dir = std::env::temp_dir();
        let path = r.write_json(&dir).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), json);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn metrics_ride_along_in_json() {
        let mut r = Runner::new("unit_metrics");
        r.metric("throughput_rps", 123.5);
        r.metric("hit_rate", 0.75);
        let json = r.to_json();
        assert!(json.contains("\"metrics\":[{\"name\":\"throughput_rps\",\"value\":123.5}"));
        assert!(json.contains("{\"name\":\"hit_rate\",\"value\":0.75}"));
        assert_eq!(r.metrics().len(), 2);
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
        assert_eq!(black_box(String::from("x")), "x");
    }
}
