//! Generators: deterministic functions from a byte [`Source`] to values.
//!
//! The combinator set mirrors what the workspace's property suites used
//! from `proptest`: `any::<T>()`, integer ranges, tuples, `vec`,
//! `one_of`, `map`, and character/string generators. All generators decode
//! the all-zero stream to their simplest value (range minimum, first
//! alternative, shortest collection) — that convention is what makes
//! byte-level shrinking produce human-readable minimal cases.

use crate::source::Source;
use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// A test-case generator.
pub trait Gen {
    /// The generated type.
    type Value;

    /// Produces one value from the stream.
    fn generate(&self, src: &mut Source<'_>) -> Self::Value;

    /// Applies `f` to every generated value. Shrinking passes through:
    /// the underlying bytes are shrunk and re-mapped.
    ///
    /// Deliberately *not* named `map`: ranges are both `Iterator`s and
    /// generators, and a `map` here would make every `(0..n).map(...)` in
    /// scope of this trait ambiguous. The `proptest` spelling keeps
    /// ported suites diff-free anyway.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { gen: self, f }
    }

    /// Type-erases the generator (for heterogeneous [`one_of`] lists).
    fn boxed(self) -> BoxedGen<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedGen(Box::new(self))
    }
}

impl<G: Gen + ?Sized> Gen for &G {
    type Value = G::Value;

    fn generate(&self, src: &mut Source<'_>) -> Self::Value {
        (**self).generate(src)
    }
}

/// See [`Gen::prop_map`].
pub struct Map<G, F> {
    gen: G,
    f: F,
}

impl<G: Gen, U, F: Fn(G::Value) -> U> Gen for Map<G, F> {
    type Value = U;

    fn generate(&self, src: &mut Source<'_>) -> U {
        (self.f)(self.gen.generate(src))
    }
}

trait DynGen<T> {
    fn generate_dyn(&self, src: &mut Source<'_>) -> T;
}

impl<G: Gen> DynGen<G::Value> for G {
    fn generate_dyn(&self, src: &mut Source<'_>) -> G::Value {
        self.generate(src)
    }
}

/// A type-erased generator (see [`Gen::boxed`]).
pub struct BoxedGen<T>(Box<dyn DynGen<T>>);

impl<T> Gen for BoxedGen<T> {
    type Value = T;

    fn generate(&self, src: &mut Source<'_>) -> T {
        self.0.generate_dyn(src)
    }
}

/// Types with a canonical full-domain generator ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws a uniform-ish value over the whole domain.
    fn arbitrary(src: &mut Source<'_>) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty => |$src:ident| $body:expr),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary($src: &mut Source<'_>) -> Self {
                $body
            }
        }
    )*};
}

impl_arbitrary! {
    u8 => |src| src.byte(),
    u16 => |src| src.u16_raw(),
    u32 => |src| src.u32_raw(),
    u64 => |src| src.u64_raw(),
    u128 => |src| src.u128_raw(),
    usize => |src| src.u64_raw() as usize,
    i8 => |src| src.byte() as i8,
    i16 => |src| src.u16_raw() as i16,
    i32 => |src| src.u32_raw() as i32,
    i64 => |src| src.u64_raw() as i64,
    i128 => |src| src.u128_raw() as i128,
    isize => |src| src.u64_raw() as isize,
    bool => |src| src.byte() & 1 == 1,
    char => |src| arb_char(src),
}

/// One uniform-ish `char` (any Unicode scalar value; zeros decode to
/// `'\0'`). Surrogate codepoints fold upward past the gap.
pub fn arb_char(src: &mut Source<'_>) -> char {
    // 0x110000 scalar values minus the 0x800 surrogates.
    let x = src.below(0x0010_F800) as u32;
    let folded = if x >= 0xD800 { x + 0x800 } else { x };
    char::from_u32(folded).expect("surrogate gap folded away")
}

/// The canonical generator for `T` (full domain).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Gen for Any<T> {
    type Value = T;

    fn generate(&self, src: &mut Source<'_>) -> T {
        T::arbitrary(src)
    }
}

macro_rules! impl_range_gen {
    ($($t:ty as $wide:ty),* $(,)?) => {$(
        impl Gen for Range<$t> {
            type Value = $t;

            fn generate(&self, src: &mut Source<'_>) -> $t {
                assert!(self.start < self.end, "empty generator range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(src.below(span) as $t)
            }
        }

        impl Gen for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, src: &mut Source<'_>) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty generator range");
                let span = (hi as $wide).wrapping_sub(lo as $wide).wrapping_add(1);
                if span == 0 {
                    // Full domain of a 64-bit type.
                    return lo.wrapping_add(src.u64_raw() as $t);
                }
                lo.wrapping_add(src.below(span as u64) as $t)
            }
        }

        impl Gen for RangeFrom<$t> {
            type Value = $t;

            fn generate(&self, src: &mut Source<'_>) -> $t {
                let lo = self.start;
                let span = (<$t>::MAX as $wide).wrapping_sub(lo as $wide).wrapping_add(1);
                if span == 0 {
                    return lo.wrapping_add(src.u64_raw() as $t);
                }
                lo.wrapping_add(src.below(span as u64) as $t)
            }
        }
    )*};
}

impl_range_gen! {
    u8 as u8,
    u16 as u16,
    u32 as u32,
    u64 as u64,
    usize as u64,
    i8 as u8,
    i16 as u16,
    i32 as u32,
    i64 as u64,
    isize as u64,
}

// 128-bit ranges get their own impls: spans exceed the 64-bit `below`.
macro_rules! impl_range_gen_128 {
    ($($t:ty),* $(,)?) => {$(
        impl Gen for Range<$t> {
            type Value = $t;

            fn generate(&self, src: &mut Source<'_>) -> $t {
                assert!(self.start < self.end, "empty generator range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add(below_128(src, span) as $t)
            }
        }

        impl Gen for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, src: &mut Source<'_>) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty generator range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    return lo.wrapping_add(src.u128_raw() as $t);
                }
                lo.wrapping_add(below_128(src, span) as $t)
            }
        }

        impl Gen for RangeFrom<$t> {
            type Value = $t;

            fn generate(&self, src: &mut Source<'_>) -> $t {
                let lo = self.start;
                let span = (<$t>::MAX as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    return lo.wrapping_add(src.u128_raw() as $t);
                }
                lo.wrapping_add(below_128(src, span) as $t)
            }
        }
    )*};
}

impl_range_gen_128!(u128, i128);

fn below_128(src: &mut Source<'_>, span: u128) -> u128 {
    if span <= u64::MAX as u128 {
        src.below(span as u64) as u128
    } else {
        src.u128_raw() % span
    }
}

macro_rules! impl_tuple_gen {
    ($($name:ident),+) => {
        impl<$($name: Gen),+> Gen for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, src: &mut Source<'_>) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(src),)+)
            }
        }
    };
}

impl_tuple_gen!(A);
impl_tuple_gen!(A, B);
impl_tuple_gen!(A, B, C);
impl_tuple_gen!(A, B, C, D);
impl_tuple_gen!(A, B, C, D, E);
impl_tuple_gen!(A, B, C, D, E, F);

/// Length bound for [`vec`] and the string generators.
#[derive(Debug, Clone, Copy)]
pub struct LenRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for LenRange {
    fn from(n: usize) -> Self {
        LenRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for LenRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty length range");
        LenRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for LenRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty length range");
        LenRange { lo: *r.start(), hi: *r.end() }
    }
}

impl LenRange {
    fn draw(&self, src: &mut Source<'_>) -> usize {
        self.lo + src.below((self.hi - self.lo) as u64 + 1) as usize
    }
}

/// A vector of `len` values from `element` (`len` may be a fixed size, a
/// `Range`, or a `RangeInclusive`). Zero bytes decode to the minimum
/// length.
pub fn vec<G: Gen>(element: G, len: impl Into<LenRange>) -> VecGen<G> {
    VecGen {
        element,
        len: len.into(),
    }
}

/// See [`vec`].
pub struct VecGen<G> {
    element: G,
    len: LenRange,
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, src: &mut Source<'_>) -> Vec<G::Value> {
        let n = self.len.draw(src);
        // `Range` is both an `Iterator` and a `Gen`; a loop avoids the
        // ambiguous `.map`.
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.element.generate(src));
        }
        out
    }
}

/// Picks one of the alternatives uniformly (zeros decode to the first:
/// put the simplest alternative first, as with `prop_oneof`).
pub fn one_of<T>(alternatives: Vec<BoxedGen<T>>) -> OneOf<T> {
    assert!(!alternatives.is_empty(), "one_of needs an alternative");
    OneOf { alternatives }
}

/// See [`one_of`].
pub struct OneOf<T> {
    alternatives: Vec<BoxedGen<T>>,
}

impl<T> Gen for OneOf<T> {
    type Value = T;

    fn generate(&self, src: &mut Source<'_>) -> T {
        let i = src.below(self.alternatives.len() as u64) as usize;
        self.alternatives[i].generate(src)
    }
}

/// A string whose characters come from `alphabet` (uniform by index) with
/// length in `len`. Replaces `proptest`'s `"[abc]{0,5}"` regex strategies.
pub fn string_from(alphabet: &'static str, len: impl Into<LenRange>) -> StringFrom {
    assert!(!alphabet.is_empty(), "empty alphabet");
    StringFrom {
        chars: alphabet.chars().collect(),
        len: len.into(),
    }
}

/// See [`string_from`].
pub struct StringFrom {
    chars: Vec<char>,
    len: LenRange,
}

impl Gen for StringFrom {
    type Value = String;

    fn generate(&self, src: &mut Source<'_>) -> String {
        let n = self.len.draw(src);
        let mut out = String::with_capacity(n);
        for _ in 0..n {
            out.push(self.chars[src.below(self.chars.len() as u64) as usize]);
        }
        out
    }
}

/// A string of arbitrary Unicode scalar values with length in `len`.
/// Replaces `proptest`'s `".{0,60}"`.
pub fn arb_string(len: impl Into<LenRange>) -> ArbString {
    ArbString { len: len.into() }
}

/// See [`arb_string`].
pub struct ArbString {
    len: LenRange,
}

impl Gen for ArbString {
    type Value = String;

    fn generate(&self, src: &mut Source<'_>) -> String {
        let n = self.len.draw(src);
        let mut out = String::with_capacity(n);
        for _ in 0..n {
            out.push(arb_char(src));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqe_rand::rngs::StdRng;
    use pqe_rand::SeedableRng;

    fn with_random<T>(seed: u64, g: &impl Gen<Value = T>) -> T {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut src = Source::record(&mut rng);
        g.generate(&mut src)
    }

    #[test]
    fn ranges_respect_bounds() {
        for seed in 0..200 {
            let x = with_random(seed, &(3u32..9));
            assert!((3..9).contains(&x));
            let y = with_random(seed, &(-4i64..=4));
            assert!((-4..=4).contains(&y));
            let z = with_random(seed, &(1u128..));
            assert!(z >= 1);
        }
    }

    #[test]
    fn zero_stream_gives_minimal_values() {
        let mut src = Source::replay(&[]);
        let (a, b, v, s) = (5u32..100, 0u64..=9, vec(any::<bool>(), 2..5), arb_string(0..4))
            .generate(&mut src);
        assert_eq!(a, 5);
        assert_eq!(b, 0);
        assert_eq!(v, vec![false, false]);
        assert_eq!(s, "");
    }

    #[test]
    fn map_and_one_of_compose() {
        let g = one_of(vec![
            (0u64..10).prop_map(|x| x * 2).boxed(),
            (100u64..110).boxed(),
        ]);
        for seed in 0..100 {
            let v = with_random(seed, &g);
            assert!(v < 20 && v % 2 == 0 || (100..110).contains(&v), "{v}");
        }
        // First alternative on the zero stream.
        let mut src = Source::replay(&[]);
        assert_eq!(g.generate(&mut src), 0);
    }

    #[test]
    fn vec_lengths_cover_range() {
        let g = vec(any::<u8>(), 1..4);
        let mut seen = [false; 3];
        for seed in 0..100 {
            let v = with_random(seed, &g);
            assert!((1..4).contains(&v.len()));
            seen[v.len() - 1] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn string_from_uses_alphabet_only() {
        let g = string_from("ab,()", 0..6);
        for seed in 0..50 {
            let s = with_random(seed, &g);
            assert!(s.chars().all(|c| "ab,()".contains(c)), "{s:?}");
        }
    }

    #[test]
    fn arb_char_covers_non_ascii_and_replays() {
        // 0xA0 (NO-BREAK SPACE) is reachable by an explicit byte stream —
        // the converted parser regression relies on this encoding.
        let mut src = Source::replay(&[0xA0, 0, 0, 0]);
        assert_eq!(arb_char(&mut src), '\u{a0}');
    }

    #[test]
    fn generation_is_a_pure_function_of_bytes() {
        let g = (vec(any::<u16>(), 0..5), 0u32..1000, arb_string(0..8));
        let mut rng = StdRng::seed_from_u64(9);
        let mut rec = Source::record(&mut rng);
        let v1 = g.generate(&mut rec);
        let bytes = rec.transcript().to_vec();
        let v2 = g.generate(&mut Source::replay(&bytes));
        assert_eq!(v1, v2);
    }
}
