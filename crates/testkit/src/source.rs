//! The byte stream generators draw from.
//!
//! Two modes share one draw API:
//!
//! * **Record** — bytes come from a seeded RNG and are appended to a
//!   transcript, so a failing case can be replayed and shrunk.
//! * **Replay** — bytes come from a fixed buffer (a shrink candidate or a
//!   corpus entry); when the buffer runs out the stream pads with zeros,
//!   which by convention decodes to the *simplest* value of every
//!   generator.
//!
//! # Byte-level encoding (stable; corpus files depend on it)
//!
//! * [`Source::byte`] — 1 byte, as-is.
//! * [`Source::below`]`(n)` — a value in `[0, n)`: consumes **0 bytes** if
//!   `n ≤ 1`, else 1 byte if `n ≤ 2^8`, 2 bytes (LE) if `n ≤ 2^16`,
//!   4 bytes if `n ≤ 2^32`, 8 bytes otherwise; the raw word reduces by
//!   `% n`. (Modulo bias is fine *here*: this drives test-case diversity,
//!   not statistical estimates — the production path in `pqe-rand` uses
//!   unbiased rejection.)
//! * Fixed-width draws ([`Source::u64_raw`], …) — LE bytes, full width.
//!
//! Keeping the encoding documented and boring makes corpus entries
//! hand-writable: the two `proptest-regressions` files of the old harness
//! were converted by writing the bytes out by hand.

use pqe_rand::rngs::StdRng;
use pqe_rand::RngCore;

enum Mode<'a> {
    Record { rng: &'a mut StdRng, transcript: Vec<u8> },
    Replay { data: &'a [u8], pos: usize },
}

/// A finite byte stream driving one generated test case.
pub struct Source<'a> {
    mode: Mode<'a>,
}

impl<'a> Source<'a> {
    /// A recording stream backed by `rng`.
    pub fn record(rng: &'a mut StdRng) -> Self {
        Source {
            mode: Mode::Record {
                rng,
                transcript: Vec::with_capacity(64),
            },
        }
    }

    /// A replay stream over `data` (zero-padded past the end).
    pub fn replay(data: &'a [u8]) -> Self {
        Source {
            mode: Mode::Replay { data, pos: 0 },
        }
    }

    /// The bytes drawn so far (recording mode), or the replay buffer.
    pub fn transcript(&self) -> &[u8] {
        match &self.mode {
            Mode::Record { transcript, .. } => transcript,
            Mode::Replay { data, .. } => data,
        }
    }

    /// Draws one byte.
    pub fn byte(&mut self) -> u8 {
        match &mut self.mode {
            Mode::Record { rng, transcript } => {
                let b = (rng.next_u64() >> 56) as u8;
                transcript.push(b);
                b
            }
            Mode::Replay { data, pos } => {
                let b = data.get(*pos).copied().unwrap_or(0);
                *pos += 1;
                b
            }
        }
    }

    fn le_bytes<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        for slot in &mut out {
            *slot = self.byte();
        }
        out
    }

    /// 2 raw bytes, little-endian.
    pub fn u16_raw(&mut self) -> u16 {
        u16::from_le_bytes(self.le_bytes())
    }

    /// 4 raw bytes, little-endian.
    pub fn u32_raw(&mut self) -> u32 {
        u32::from_le_bytes(self.le_bytes())
    }

    /// 8 raw bytes, little-endian.
    pub fn u64_raw(&mut self) -> u64 {
        u64::from_le_bytes(self.le_bytes())
    }

    /// 16 raw bytes, little-endian.
    pub fn u128_raw(&mut self) -> u128 {
        u128::from_le_bytes(self.le_bytes())
    }

    /// A value in `[0, n)` using the width-adaptive encoding above.
    pub fn below(&mut self, n: u64) -> u64 {
        if n <= 1 {
            return 0;
        }
        let raw = if n <= 1 << 8 {
            self.byte() as u64
        } else if n <= 1 << 16 {
            self.u16_raw() as u64
        } else if n <= 1 << 32 {
            self.u32_raw() as u64
        } else {
            self.u64_raw()
        };
        raw % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqe_rand::SeedableRng;

    #[test]
    fn replay_pads_with_zeros() {
        let mut src = Source::replay(&[7]);
        assert_eq!(src.byte(), 7);
        assert_eq!(src.byte(), 0);
        assert_eq!(src.u64_raw(), 0);
    }

    #[test]
    fn record_then_replay_reproduces_draws() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut rec = Source::record(&mut rng);
        let a = (rec.byte(), rec.below(300), rec.u64_raw(), rec.below(7));
        let transcript = rec.transcript().to_vec();

        let mut rep = Source::replay(&transcript);
        let b = (rep.byte(), rep.below(300), rep.u64_raw(), rep.below(7));
        assert_eq!(a, b);
    }

    #[test]
    fn below_consumes_documented_widths() {
        let mut src = Source::replay(&[5, 1, 2, 0xFF]);
        assert_eq!(src.below(1), 0); // 0 bytes
        assert_eq!(src.below(256), 5); // 1 byte
        assert_eq!(src.below(1 << 16), 0x0201); // 2 bytes LE
        assert_eq!(src.below(10), 0xFF % 10); // 1 byte
    }

    #[test]
    fn zero_stream_is_all_minimums() {
        let mut src = Source::replay(&[]);
        assert_eq!(src.below(100), 0);
        assert_eq!(src.u32_raw(), 0);
    }
}
