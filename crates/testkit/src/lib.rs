//! In-tree property-based testing for the PQE workspace.
//!
//! Replaces `proptest` (and the `criterion` bench harness — see
//! [`bench`]) with a small, hermetic harness in the style of
//! Hypothesis/`cargo-fuzz`: every generated value is a deterministic
//! function of a finite **byte stream**. That single design decision buys
//! the three features a property harness needs:
//!
//! * **Generation** — [`Gen`]erators draw bytes from a [`Source`]; in
//!   random mode the bytes come from a seeded [`pqe_rand`] generator and
//!   are recorded.
//! * **Shrinking** — on failure the recorded bytes are minimized
//!   (chunk deletion, zeroing, per-byte descent) and replayed through the
//!   *same* generator, so shrinking works through `map`, tuples, and
//!   `one_of` for free — no per-type shrinkers. An exhausted stream pads
//!   with zeros, and generators are written so that "all zeros" is the
//!   simplest value (range minimum, first alternative, empty vec).
//! * **Regression corpus** — a failing case *is* its byte stream, so a
//!   hex line in `tests/corpus/<suite>.corpus` pins it forever. Corpus
//!   entries are replayed before any random case, mirroring
//!   `proptest-regressions` files (which this replaces).
//!
//! # Writing a property
//!
//! ```
//! use pqe_testkit::prelude::*;
//!
//! #[derive(Debug)]
//! struct Point { x: u32, y: u32 }
//!
//! fn point() -> impl Gen<Value = Point> {
//!     (0u32..100, 0u32..100).prop_map(|(x, y)| Point { x, y })
//! }
//!
//! // Inside a #[test]:
//! check("sum_is_monotone", &Config::cases(64), &(point(), 1u32..10), |(p, d)| {
//!     prop_assert!(p.x + d > p.x, "overflowed at {} + {}", p.x, d);
//!     Ok(())
//! });
//! ```
//!
//! The closure returns [`CaseResult`]; the [`prop_assert!`],
//! [`prop_assert_eq!`] and [`prop_assume!`] macros keep ported `proptest`
//! suites nearly diff-free. Panics inside the property are caught and
//! treated as failures (so `unwrap()` still shrinks).

pub mod bench;
mod gen;
mod runner;
mod source;

pub use gen::{
    any, arb_char, arb_string, one_of, string_from, vec, Arbitrary, BoxedGen, Gen, LenRange,
};
pub use runner::{check, CaseFail, CaseResult, Config};
pub use source::Source;

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, arb_string, check, one_of, prop_assert, prop_assert_eq, prop_assume, string_from,
        vec, CaseFail, CaseResult, Config, Gen,
    };
}

/// Asserts a condition inside a property; on failure the case fails (and
/// shrinks) with the formatted message instead of panicking the harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::CaseFail::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property (both sides shown on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Discards the current case (not a failure): use for preconditions.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::CaseFail::Discard);
        }
    };
}
