//! Satellite: span attribution under `map_chunks` fan-out is
//! deterministic even though scheduling is not — a threaded sample loop
//! under an active span yields the *same span tree* (structure and
//! counts) at 1, 2 and 4 workers, because pqe-obs charges work by name
//! path and `pqe-par` workers adopt their spawner's span context.

use pqe_obs::span;

/// `(name, count, children)` skeleton — the worker-count-invariant part
/// of a span tree (total_ns carries timing noise by nature).
#[derive(Debug, PartialEq)]
struct Shape(String, u64, Vec<Shape>);

fn shape(n: &span::SpanNode) -> Shape {
    Shape(n.name.clone(), n.count, n.children.iter().map(shape).collect())
}

fn run_sample_loop(workers: usize) -> Vec<Shape> {
    span::reset();
    span::set_enabled(true);
    {
        let _loop_span = span::span("sample_loop");
        let out = pqe_par::map_indexed(workers, 64, |i| {
            let _s = span::span("sample");
            let _m = span::span("member_check");
            i * 2
        });
        assert_eq!(out.len(), 64);
    }
    span::set_enabled(false);
    let snap = span::snapshot();
    snap.iter().filter(|r| r.name == "sample_loop").map(shape).collect()
}

#[test]
fn threaded_sample_loop_has_worker_count_invariant_span_tree() {
    let at1 = run_sample_loop(1);
    // The expected tree: one loop entry, 64 samples, each with one check.
    assert_eq!(
        at1,
        vec![Shape(
            "sample_loop".into(),
            1,
            vec![Shape("sample".into(), 64, vec![Shape("member_check".into(), 64, vec![])])]
        )]
    );
    for workers in [2, 4] {
        let at_n = run_sample_loop(workers);
        assert_eq!(at_n, at1, "span tree differs at {workers} workers");
    }
}
