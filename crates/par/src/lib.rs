//! Zero-dependency parallel-execution substrate for the FPRAS hot paths.
//!
//! The workspace is hermetic (DESIGN.md §"Dependency policy"), so instead
//! of `rayon`/`crossbeam` this crate provides the two primitives the
//! estimators actually need, built on `std` alone:
//!
//! * [`map_chunks`] — a scoped, work-chunking fork/join: `total` indexed
//!   work items are pulled off an atomic counter in fixed-size chunks by
//!   `threads` scoped workers, and the results are returned **in index
//!   order** regardless of scheduling. Determinism therefore never depends
//!   on thread interleaving — only on what each indexed item computes.
//! * [`ShardedMap`] — a concurrent memo table: a fixed power-of-two number
//!   of `Mutex<HashMap>` shards, locked per operation (never across a
//!   recursive computation). Two workers may race to compute the same
//!   entry; callers guarantee idempotence (in this workspace every memo
//!   value is a pure function of the key and the run seed), so the race
//!   costs duplicated work, never divergent state.
//!
//! Nested parallelism is flattened: a [`map_chunks`] call made *from
//! inside* a worker runs inline on that worker. The estimators exploit
//! this — the outermost parallel loop (independent repetitions, or the
//! first ambiguous union) fans out, and everything beneath it stays
//! sequential within its worker, which is the efficient granularity.
//!
//! Thread-count resolution (see [`resolve_threads`]): an explicit request
//! wins; `0` means "auto" — the `PQE_THREADS` environment variable if set,
//! otherwise [`std::thread::available_parallelism`].

use std::cell::Cell;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The environment variable that overrides auto-detected parallelism.
pub const THREADS_ENV: &str = "PQE_THREADS";

thread_local! {
    /// Set while the current thread is a `map_chunks` worker; nested calls
    /// then run inline instead of spawning a second tier of threads.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// `true` iff the current thread is already executing inside a
/// [`map_chunks`] worker (nested calls run inline).
pub fn in_worker() -> bool {
    IN_WORKER.with(|f| f.get())
}

/// The auto thread count: `PQE_THREADS` if set to a positive integer,
/// otherwise the machine's available parallelism (at least 1).
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a requested thread count: `0` means auto (see
/// [`default_threads`]); anything else is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        default_threads()
    } else {
        requested
    }
}

/// Applies `f` to every chunk of `0..total` and returns the concatenated
/// results **in index order**.
///
/// `f` receives half-open index ranges of length ≤ `chunk` and returns one
/// result per index. With `threads ≤ 1`, with a single chunk of work, or
/// when called from inside another `map_chunks` worker, `f(0..total)` runs
/// inline on the calling thread — the parallel and sequential paths
/// perform *exactly the same fold* over identical per-index results, which
/// is what makes thread count invisible to deterministic callers.
///
/// Panics in `f` are propagated to the caller after all workers stop
/// taking new chunks.
pub fn map_chunks<T, F>(threads: usize, total: usize, chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> Vec<T> + Sync,
{
    let chunk = chunk.max(1);
    if total == 0 {
        return Vec::new();
    }
    if threads <= 1 || total <= chunk || in_worker() {
        let out = f(0..total);
        debug_assert_eq!(out.len(), total, "map_chunks closure must yield one result per index");
        return out;
    }
    let workers = threads.min(total.div_ceil(chunk));
    let next = AtomicUsize::new(0);
    // Workers adopt the spawner's span context so fan-out work is
    // attributed to the phase that requested it (pqe-obs charges by name
    // path, never by thread, keeping span trees worker-count-invariant).
    let span_ctx = pqe_obs::span::current_context();
    let mut parts: Vec<(usize, Vec<T>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let _span = pqe_obs::span::enter_context(span_ctx);
                    IN_WORKER.with(|g| g.set(true));
                    let mut local: Vec<(usize, Vec<T>)> = Vec::new();
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= total {
                            break;
                        }
                        let end = (start + chunk).min(total);
                        let out = f(start..end);
                        debug_assert_eq!(out.len(), end - start);
                        local.push((start, out));
                    }
                    IN_WORKER.with(|g| g.set(false));
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("pqe-par worker panicked"))
            .collect()
    });
    parts.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(total);
    for (_, mut part) in parts {
        out.append(&mut part);
    }
    out
}

/// [`map_chunks`] with a per-index closure (chunking handled internally).
pub fn map_indexed<T, F>(threads: usize, total: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    // Aim for several chunks per worker so uneven item costs balance.
    let chunk = if threads <= 1 {
        total.max(1)
    } else {
        (total / (threads * 4)).max(1)
    };
    map_chunks(threads, total, chunk, |r| r.map(&f).collect())
}

/// The multiply-rotate hash step of the rustc/Firefox "Fx" hasher. Not
/// DoS-resistant — for internal memo tables keyed by small integers, where
/// hashing sits on the sampling hot path and SipHash is measurable.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast non-cryptographic [`Hasher`] (the classic FxHash recurrence).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = std::hash::BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`] — drop-in for hot memo tables.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A concurrent memo table: `HashMap` split across power-of-two mutex
/// shards, locked per operation. Keys are hashed once with [`FxHasher`]:
/// the shard index takes the top bits, the inner maps reuse the same
/// hasher.
///
/// Designed for idempotent fills: when the value for a key is a pure
/// function of the key (true for every memo in this workspace — estimates
/// are keyed by `(state, size)` plus the run seed), concurrent duplicate
/// computation is harmless and the first insert wins.
pub struct ShardedMap<K, V> {
    shards: Vec<Mutex<FxHashMap<K, V>>>,
    mask: u64,
}

impl<K: Hash + Eq, V: Clone> ShardedMap<K, V> {
    /// A map with the default shard count (16).
    pub fn new() -> Self {
        Self::with_shards(16)
    }

    /// A map with `n` shards, rounded up to a power of two.
    pub fn with_shards(n: usize) -> Self {
        let n = n.max(1).next_power_of_two();
        ShardedMap {
            shards: (0..n).map(|_| Mutex::new(FxHashMap::default())).collect(),
            mask: (n - 1) as u64,
        }
    }

    fn shard(&self, key: &K) -> &Mutex<FxHashMap<K, V>> {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        // Top bits: the low bits are what the inner map's bucket index
        // uses, and Fx mixes the final word into high bits best.
        &self.shards[((h.finish() >> 48) & self.mask) as usize]
    }

    /// A clone of the value for `key`, if present.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).lock().expect("shard poisoned").get(key).cloned()
    }

    /// `true` iff `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.shard(key).lock().expect("shard poisoned").contains_key(key)
    }

    /// Inserts `value` unless the key is already present (first insert
    /// wins — see the idempotence contract above). Returns the value now
    /// stored under `key`.
    pub fn insert(&self, key: K, value: V) -> V {
        self.shard(&key)
            .lock()
            .expect("shard poisoned")
            .entry(key)
            .or_insert(value)
            .clone()
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("shard poisoned").len()).sum()
    }

    /// `true` iff no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Hash + Eq, V: Clone> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_chunks_preserves_index_order() {
        for threads in [1, 2, 4, 8] {
            let out = map_chunks(threads, 103, 7, |r| r.map(|i| i * 3).collect());
            assert_eq!(out.len(), 103);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i * 3, "threads={threads}");
            }
        }
    }

    #[test]
    fn map_chunks_empty_and_tiny() {
        assert!(map_chunks(4, 0, 8, |r| r.map(|i| i).collect::<Vec<_>>()).is_empty());
        assert_eq!(map_chunks(4, 1, 8, |r| r.map(|i| i + 1).collect()), vec![1]);
    }

    #[test]
    fn nested_calls_run_inline() {
        let out = map_chunks(4, 8, 1, |r| {
            r.map(|i| {
                // From inside a worker the nested call must not spawn.
                let inner = map_chunks(4, 3, 1, |r2| {
                    r2.map(|j| {
                        assert!(in_worker() || i == usize::MAX);
                        i * 10 + j
                    })
                    .collect()
                });
                inner.iter().sum::<usize>()
            })
            .collect()
        });
        let expect: Vec<usize> = (0..8).map(|i| 3 * (i * 10) + 3).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn map_indexed_matches_sequential() {
        let seq = map_indexed(1, 57, |i| i * i);
        let par = map_indexed(4, 57, |i| i * i);
        assert_eq!(seq, par);
    }

    #[test]
    fn resolve_threads_literal_wins() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn sharded_map_first_insert_wins() {
        let m: ShardedMap<u32, u32> = ShardedMap::new();
        assert!(m.is_empty());
        assert_eq!(m.get(&5), None);
        assert_eq!(m.insert(5, 50), 50);
        assert_eq!(m.insert(5, 99), 50); // first value is kept
        assert_eq!(m.get(&5), Some(50));
        assert!(m.contains(&5));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn sharded_map_concurrent_fill_is_consistent() {
        let m: ShardedMap<usize, usize> = ShardedMap::with_shards(8);
        map_indexed(4, 1000, |i| {
            let k = i % 37;
            m.insert(k, k * 2);
        });
        assert_eq!(m.len(), 37);
        for k in 0..37 {
            assert_eq!(m.get(&k), Some(k * 2));
        }
    }
}
