//! Hierarchical phase spans with a global, thread-safe registry.
//!
//! A [`Span`] is an RAII guard: creating one opens a phase, dropping it
//! records the elapsed wall-clock into the registry node identified by the
//! **name path** — the chain of span names from the root, e.g.
//! `estimate → compile → ur_automaton`. Node identity never involves the
//! thread: two threads inside the same logical phase accumulate into the
//! same node, so the resulting tree is identical at any worker count
//! (counts and structure exactly; nanosecond totals up to timing noise).
//!
//! Worker threads spawned by `pqe-par` do not inherit thread-locals, so
//! the pool captures [`current_context`] before spawning and re-enters it
//! with [`enter_context`] inside each worker — fan-out work is then
//! attributed to the phase that requested it.
//!
//! Profiling is **off by default**: `span()` then costs one relaxed
//! atomic load and returns an inert guard. Enable with [`set_enabled`].
//!
//! Totals are *summed across threads*: under parallel fan-out a child's
//! total can exceed its parent's wall-clock. That is the useful number
//! for cost attribution (it is CPU time spent in the phase); percentages
//! in [`render`] are relative to the root's total of the same kind.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Sentinel parent index for root spans.
const ROOT: usize = usize::MAX;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Mirror of the table's epoch, readable without the table lock.
static EPOCH: AtomicU64 = AtomicU64::new(1);

#[derive(Default)]
struct NodeStats {
    count: AtomicU64,
    total_ns: AtomicU64,
}

struct Node {
    name: &'static str,
    parent: usize,
    stats: Arc<NodeStats>,
}

#[derive(Default)]
struct Table {
    nodes: Vec<Node>,
    index: HashMap<(usize, &'static str), usize>,
    /// Bumped on [`reset`]; stale thread-local state from a previous
    /// epoch is treated as "no current span".
    epoch: u64,
}

static TABLE: OnceLock<Mutex<Table>> = OnceLock::new();

fn table() -> &'static Mutex<Table> {
    TABLE.get_or_init(|| Mutex::new(Table { epoch: 1, ..Table::default() }))
}

/// One-entry per-thread resolve cache. Span names are `&'static str`, so
/// pointer identity is a sound cache key.
struct CacheEntry {
    epoch: u64,
    parent: usize,
    name: *const u8,
    idx: usize,
    stats: Arc<NodeStats>,
}

thread_local! {
    /// `(epoch, node index)` of the span the current thread is inside.
    static CURRENT: Cell<(u64, usize)> = const { Cell::new((0, ROOT)) };
    static RESOLVE_CACHE: RefCell<Option<CacheEntry>> = const { RefCell::new(None) };
}

/// Turns span recording on or off globally. Off (the default) makes span
/// creation a no-op costing one relaxed atomic load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// `true` iff span recording is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Resolves (or creates) the child of `parent` named `name`.
fn resolve(epoch: u64, parent: usize, name: &'static str) -> (usize, Arc<NodeStats>) {
    let mut t = table().lock().expect("span table poisoned");
    if t.epoch != epoch {
        // A reset raced us; attach at the root of the current epoch.
        return resolve_locked(&mut t, ROOT, name);
    }
    resolve_locked(&mut t, parent, name)
}

fn resolve_locked(t: &mut Table, parent: usize, name: &'static str) -> (usize, Arc<NodeStats>) {
    if let Some(&idx) = t.index.get(&(parent, name)) {
        return (idx, Arc::clone(&t.nodes[idx].stats));
    }
    let idx = t.nodes.len();
    let stats = Arc::new(NodeStats::default());
    t.nodes.push(Node { name, parent, stats: Arc::clone(&stats) });
    t.index.insert((parent, name), idx);
    (idx, stats)
}

/// An open phase. Dropping it records elapsed time and restores the
/// previously-current span on this thread.
pub struct Span {
    /// `None` when profiling was disabled at creation (inert guard).
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    stats: Arc<NodeStats>,
    started: Instant,
    prev: (u64, usize),
}

/// Opens the phase `name` as a child of the current span (or as a root).
///
/// Must be held on the thread that created it (not `Send`): the guard
/// restores this thread's span context on drop.
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { active: None };
    }
    let prev = CURRENT.with(Cell::get);
    let cur_epoch = EPOCH.load(Ordering::Relaxed);
    let parent = if prev.0 == cur_epoch { prev.1 } else { ROOT };
    // Fast path: same (epoch, parent, name) as the last resolve on this
    // thread — no lock, just an Arc clone out of the thread-local cache.
    let (idx, stats) = RESOLVE_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(e) = cache.as_ref() {
            if e.epoch == cur_epoch && e.parent == parent && e.name == name.as_ptr() {
                return (e.idx, Arc::clone(&e.stats));
            }
        }
        let (idx, stats) = resolve(cur_epoch, parent, name);
        *cache = Some(CacheEntry {
            epoch: cur_epoch,
            parent,
            name: name.as_ptr(),
            idx,
            stats: Arc::clone(&stats),
        });
        (idx, stats)
    });
    CURRENT.with(|c| c.set((cur_epoch, idx)));
    Span { active: Some(ActiveSpan { stats, started: Instant::now(), prev }) }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(a) = self.active.take() {
            let ns = a.started.elapsed().as_nanos() as u64;
            a.stats.count.fetch_add(1, Ordering::Relaxed);
            a.stats.total_ns.fetch_add(ns, Ordering::Relaxed);
            CURRENT.with(|c| c.set(a.prev));
        }
    }
}

/// A capture of the calling thread's span position, for handing to worker
/// threads (which do not inherit thread-locals).
#[derive(Clone, Copy, Debug)]
pub struct SpanContext {
    state: (u64, usize),
}

/// Captures the current thread's span context (cheap: one TLS read).
pub fn current_context() -> SpanContext {
    SpanContext { state: CURRENT.with(Cell::get) }
}

/// Makes `ctx` the current span context on this thread until the guard
/// drops. Used by `pqe-par` workers to attach to their spawner's span.
pub fn enter_context(ctx: SpanContext) -> ContextGuard {
    let prev = CURRENT.with(Cell::get);
    CURRENT.with(|c| c.set(ctx.state));
    ContextGuard { prev }
}

/// Restores the previous span context on drop.
pub struct ContextGuard {
    prev: (u64, usize),
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Clears all recorded spans (the node table) and invalidates stale
/// thread-local references via an epoch bump. Call between runs, not
/// while spans are open (an open guard from the old epoch still records
/// into its — now unreachable — stats block, which is harmless).
pub fn reset() {
    let mut t = table().lock().expect("span table poisoned");
    t.nodes.clear();
    t.index.clear();
    t.epoch += 1;
    EPOCH.store(t.epoch, Ordering::Relaxed);
}

/// One node of a snapshot tree.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanNode {
    pub name: String,
    /// Completed entries into this phase.
    pub count: u64,
    /// Total time inside this phase, summed across threads.
    pub total_ns: u64,
    /// Children, sorted by name (deterministic across runs/threads).
    pub children: Vec<SpanNode>,
}

/// A snapshot of the span forest: root nodes sorted by name, children
/// sorted by name at every level. Counts and structure are invariant
/// under worker count; only `total_ns` carries timing noise.
pub fn snapshot() -> Vec<SpanNode> {
    let t = table().lock().expect("span table poisoned");
    let mut children_of: HashMap<usize, Vec<usize>> = HashMap::new();
    for (idx, node) in t.nodes.iter().enumerate() {
        children_of.entry(node.parent).or_default().push(idx);
    }
    fn build(t: &Table, children_of: &HashMap<usize, Vec<usize>>, idx: usize) -> SpanNode {
        let node = &t.nodes[idx];
        let mut children: Vec<SpanNode> = children_of
            .get(&idx)
            .map(|c| c.iter().map(|&k| build(t, children_of, k)).collect())
            .unwrap_or_default();
        children.sort_by(|a, b| a.name.cmp(&b.name));
        SpanNode {
            name: node.name.to_owned(),
            count: node.stats.count.load(Ordering::Relaxed),
            total_ns: node.stats.total_ns.load(Ordering::Relaxed),
            children,
        }
    }
    let mut roots: Vec<SpanNode> = children_of
        .get(&ROOT)
        .map(|c| c.iter().map(|&k| build(&t, &children_of, k)).collect())
        .unwrap_or_default();
    roots.sort_by(|a, b| a.name.cmp(&b.name));
    roots
}

fn fmt_duration(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders a snapshot as an indented table: per-phase entry count, total
/// time (summed across threads) and percentage of the root's total.
pub fn render(roots: &[SpanNode]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:<42} {:>8} {:>10} {:>7}", "phase", "count", "total", "%");
    fn walk(out: &mut String, node: &SpanNode, depth: usize, root_total: u64) {
        let pct = if root_total > 0 {
            100.0 * node.total_ns as f64 / root_total as f64
        } else {
            0.0
        };
        let label = format!("{}{}", "  ".repeat(depth), node.name);
        let _ = writeln!(
            out,
            "{:<42} {:>8} {:>10} {:>6.1}%",
            label,
            node.count,
            fmt_duration(node.total_ns),
            pct
        );
        for c in &node.children {
            walk(out, c, depth + 1, root_total);
        }
    }
    for root in roots {
        walk(&mut out, root, 0, root.total_ns.max(1));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialise tests that touch the global registry.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_are_inert() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        reset();
        {
            let _s = span("t_disabled_root");
            let _c = span("t_disabled_child");
        }
        assert!(snapshot().iter().all(|r| r.name != "t_disabled_root"));
    }

    #[test]
    fn nested_spans_build_a_path_keyed_tree() {
        let _g = TEST_LOCK.lock().unwrap();
        reset();
        set_enabled(true);
        for _ in 0..3 {
            let _root = span("t_nest_root");
            for _ in 0..2 {
                let _child = span("t_nest_child");
                let _leaf = span("t_nest_leaf");
            }
        }
        set_enabled(false);
        let snap = snapshot();
        let root = snap.iter().find(|r| r.name == "t_nest_root").expect("root recorded");
        assert_eq!(root.count, 3);
        assert_eq!(root.children.len(), 1);
        let child = &root.children[0];
        assert_eq!((child.name.as_str(), child.count), ("t_nest_child", 6));
        assert_eq!(child.children.len(), 1);
        assert_eq!((child.children[0].name.as_str(), child.children[0].count), ("t_nest_leaf", 6));
    }

    #[test]
    fn context_adoption_attributes_to_spawner() {
        let _g = TEST_LOCK.lock().unwrap();
        reset();
        set_enabled(true);
        {
            let _root = span("t_ctx_root");
            let ctx = current_context();
            std::thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(move || {
                        let _g = enter_context(ctx);
                        let _w = span("t_ctx_work");
                    });
                }
            });
        }
        set_enabled(false);
        let snap = snapshot();
        let root = snap.iter().find(|r| r.name == "t_ctx_root").expect("root recorded");
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.children[0].name, "t_ctx_work");
        assert_eq!(root.children[0].count, 2);
    }

    #[test]
    fn reset_clears_and_orphans_survive() {
        let _g = TEST_LOCK.lock().unwrap();
        reset();
        set_enabled(true);
        let open = span("t_reset_open");
        reset(); // epoch bump while a guard is open
        drop(open); // records into the orphaned stats block: must not panic
        {
            let _s = span("t_reset_new");
        }
        set_enabled(false);
        let snap = snapshot();
        assert!(snap.iter().all(|r| r.name != "t_reset_open"));
        assert!(snap.iter().any(|r| r.name == "t_reset_new"));
    }

    #[test]
    fn render_has_header_and_rows() {
        let roots = vec![SpanNode {
            name: "estimate".into(),
            count: 1,
            total_ns: 2_000_000,
            children: vec![SpanNode {
                name: "compile".into(),
                count: 1,
                total_ns: 500_000,
                children: vec![],
            }],
        }];
        let text = render(&roots);
        assert!(text.contains("phase"));
        assert!(text.contains("estimate"));
        assert!(text.contains("  compile"));
        assert!(text.contains("100.0%"));
        assert!(text.contains("25.0%"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(5), "5ns");
        assert_eq!(fmt_duration(1_500), "1.5µs");
        assert_eq!(fmt_duration(2_500_000), "2.50ms");
        assert_eq!(fmt_duration(3_200_000_000), "3.200s");
    }
}
