//! Optional event logging to stderr, gated by the `PQE_LOG` environment
//! variable.
//!
//! `PQE_LOG` accepts `off` (default), `error`, `warn`, `info`, `debug`,
//! `trace`. Events at or below the configured level are written to
//! stderr as `[<uptime>s LEVEL target] message`; everything else is
//! dropped after one relaxed atomic load — and crucially the message
//! closure is never invoked, so disabled logging never formats.
//!
//! Logging is observation-only: it writes to stderr and can never
//! perturb estimates (asserted by `scripts/verify.sh`, which re-runs the
//! determinism suite under `PQE_LOG=debug`).

use std::sync::atomic::{AtomicU8, Ordering};

/// Event severity, ordered from most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Error = 1,
    Warn = 2,
    Info = 3,
    Debug = 4,
    Trace = 5,
}

impl Level {
    fn label(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

/// `0` = off; `1..=5` = max enabled [`Level`]; `UNINIT` = not yet parsed.
static FILTER: AtomicU8 = AtomicU8::new(UNINIT);
const UNINIT: u8 = u8::MAX;

/// The environment variable controlling the log filter.
pub const LOG_ENV: &str = "PQE_LOG";

fn parse_level(s: &str) -> u8 {
    match s.trim().to_ascii_lowercase().as_str() {
        "error" => 1,
        "warn" | "warning" => 2,
        "info" => 3,
        "debug" => 4,
        "trace" => 5,
        // "off", empty, or unrecognised: logging stays off.
        _ => 0,
    }
}

fn filter() -> u8 {
    let f = FILTER.load(Ordering::Relaxed);
    if f != UNINIT {
        return f;
    }
    let parsed = std::env::var(LOG_ENV).map(|v| parse_level(&v)).unwrap_or(0);
    FILTER.store(parsed, Ordering::Relaxed);
    parsed
}

/// Overrides the env-derived filter (tests; `None` disables logging).
pub fn set_filter(level: Option<Level>) {
    FILTER.store(level.map(|l| l as u8).unwrap_or(0), Ordering::Relaxed);
}

/// `true` iff events at `level` would currently be written.
pub fn enabled(level: Level) -> bool {
    (level as u8) <= filter()
}

/// Writes one event to stderr if `level` passes the filter. `msg` is only
/// invoked when the event is actually written.
pub fn event(level: Level, target: &str, msg: impl FnOnce() -> String) {
    if !enabled(level) {
        return;
    }
    let uptime = crate::process_start().elapsed();
    eprintln!(
        "[{:>9.3}s {:5} {}] {}",
        uptime.as_secs_f64(),
        level.label(),
        target,
        msg()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_levels() {
        assert_eq!(parse_level("error"), 1);
        assert_eq!(parse_level("WARN"), 2);
        assert_eq!(parse_level(" info "), 3);
        assert_eq!(parse_level("debug"), 4);
        assert_eq!(parse_level("trace"), 5);
        assert_eq!(parse_level("off"), 0);
        assert_eq!(parse_level("bogus"), 0);
        assert_eq!(parse_level(""), 0);
    }

    #[test]
    fn disabled_never_formats() {
        set_filter(None);
        event(Level::Error, "test", || {
            panic!("message closure must not run when logging is off")
        });
        set_filter(Some(Level::Info));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Debug));
        let mut ran = false;
        event(Level::Info, "test", || {
            ran = true;
            "covered by the filter".to_owned()
        });
        assert!(ran);
        set_filter(None);
    }
}
