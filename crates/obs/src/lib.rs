//! Zero-dependency observability for the PQE workspace.
//!
//! The paper's headline claim is a *runtime bound* — `poly(|Q|, |H|, ε⁻¹)`
//! through a chain of reductions — so the repo needs to attribute
//! wall-clock to individual phases (compile vs. count, serve read/eval/
//! write), not just whole commands. This crate provides that with `std`
//! alone, in keeping with the workspace's hermetic dependency policy:
//!
//! * [`span`] — RAII guards recording hierarchical phase timings into a
//!   global thread-safe registry. Span identity is the *name path*
//!   (`(parent, name)`), never the thread, so trees are identical at any
//!   worker count; `pqe-par` workers adopt their spawner's span context
//!   via [`span::current_context`] / [`span::enter_context`].
//! * [`metrics`] — named counters, gauges and log-linear histograms
//!   (p50/p95/p99) behind sharded atomics: hot sample loops pay one
//!   relaxed atomic add, never a lock.
//! * [`log`] — optional event logging to stderr, gated by the `PQE_LOG`
//!   environment variable (`off`/`error`/`warn`/`info`/`debug`/`trace`).
//!
//! **Determinism contract**: nothing in this crate touches RNG streams or
//! feeds back into estimator control flow. Estimates are bit-identical
//! with profiling enabled vs. compiled-in-but-idle (asserted in
//! `tests/determinism.rs`). When profiling is disabled (the default),
//! a span entry/exit costs a single relaxed atomic load.

pub mod log;
pub mod metrics;
pub mod span;

use std::sync::OnceLock;
use std::time::Instant;

static PROCESS_START: OnceLock<Instant> = OnceLock::new();

/// The instant this process first touched `pqe-obs` (lazily initialised;
/// call early — e.g. from `main` — for a faithful process start).
pub fn process_start() -> Instant {
    *PROCESS_START.get_or_init(Instant::now)
}

/// Whole seconds elapsed since [`process_start`].
pub fn uptime_seconds() -> u64 {
    process_start().elapsed().as_secs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_start_is_stable() {
        let a = process_start();
        let b = process_start();
        assert_eq!(a, b);
        // uptime is monotone, non-panicking
        let _ = uptime_seconds();
    }
}
