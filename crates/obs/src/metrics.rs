//! Named counters, gauges and log-linear histograms behind sharded
//! atomics.
//!
//! Handles are `Arc`s resolved once by name from a global registry
//! ([`counter`] / [`gauge`] / [`histogram`]); the hot path then costs one
//! relaxed atomic RMW — no lock, and for counters no shared cache line
//! either (per-thread shard striping).
//!
//! Histograms use log-linear buckets (8 sub-buckets per octave, ≤ 9.4 %
//! relative width), the standard HdrHistogram-style layout: cheap O(1)
//! recording, percentile queries by a bucket walk. Values are whatever
//! unit the caller picks; the serve stack records microseconds.
//!
//! Metrics are always on (unlike spans): they are aggregate-only, so the
//! steady-state cost is a handful of atomic adds per request/sample loop.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Cache-line-padded atomic, so counter shards never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

const COUNTER_SHARDS: usize = 8;

static NEXT_THREAD_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Round-robin shard assignment per thread.
    static THREAD_SHARD: usize =
        NEXT_THREAD_SHARD.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
}

/// A monotone counter striped across cache-line-padded shards.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; COUNTER_SHARDS],
}

impl Counter {
    /// Adds `n` (relaxed; one uncontended atomic add in steady state).
    pub fn add(&self, n: u64) {
        let shard = THREAD_SHARD.with(|s| *s);
        self.shards[shard].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }

    fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A last-write-wins signed gauge.
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.set(0);
    }
}

/// Sub-buckets per octave (3 bits of mantissa precision).
const SUB: usize = 8;
/// Bucket count: values `0..8` map to identity buckets `0..8`; each
/// octave `msb = 3..=63` contributes 8 more.
const NBUCKETS: usize = SUB + (64 - 3) * SUB;

/// Index of the log-linear bucket covering `v`.
fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // ≥ 3
    let sub = ((v >> (msb - 3)) & 7) as usize;
    (msb - 3) * SUB + SUB + sub
}

/// Inclusive lower bound of bucket `b`.
fn bucket_lo(b: usize) -> u64 {
    if b < SUB {
        return b as u64;
    }
    let o = (b - SUB) / SUB;
    let sub = (b - SUB) % SUB;
    ((SUB + sub) as u64) << o
}

/// Representative value of bucket `b` (midpoint of its range).
fn bucket_mid(b: usize) -> u64 {
    if b < SUB {
        return b as u64;
    }
    let o = (b - SUB) / SUB;
    bucket_lo(b) + (1u64 << o) / 2
}

/// A log-linear histogram: O(1) recording, percentile walk on read.
pub struct Histogram {
    buckets: Box<[AtomicU64; NBUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..NBUCKETS)
                .map(|_| AtomicU64::new(0))
                .collect::<Vec<_>>()
                .try_into()
                .ok()
                .map(Box::new)
                .expect("bucket count matches"),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation (four relaxed atomic RMWs).
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// An immutable snapshot with precomputed percentiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        let counts: Vec<u64> =
            self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let pct = |p: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // Rank of the p-th percentile observation (1-based ceil).
            let rank = ((p / 100.0) * count as f64).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (b, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_mid(b);
                }
            }
            bucket_mid(NBUCKETS - 1)
        };
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            p50: pct(50.0),
            p95: pct(95.0),
            p99: pct(99.0),
        }
    }

    fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time percentile summary of a [`Histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// Percentiles are bucket midpoints: ≤ 9.4 % relative error.
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the recorded values (exact, from `sum`).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::default)
}

/// The counter named `name`, created on first use. Resolve once and keep
/// the `Arc` on hot paths.
pub fn counter(name: &str) -> Arc<Counter> {
    let mut m = registry().counters.lock().expect("metrics poisoned");
    Arc::clone(m.entry(name.to_owned()).or_default())
}

/// The gauge named `name`, created on first use.
pub fn gauge(name: &str) -> Arc<Gauge> {
    let mut m = registry().gauges.lock().expect("metrics poisoned");
    Arc::clone(m.entry(name.to_owned()).or_default())
}

/// The histogram named `name`, created on first use.
pub fn histogram(name: &str) -> Arc<Histogram> {
    let mut m = registry().histograms.lock().expect("metrics poisoned");
    Arc::clone(m.entry(name.to_owned()).or_default())
}

/// Name-sorted snapshot of every registered metric.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Snapshots all registered metrics (names sorted — deterministic order).
pub fn snapshot() -> MetricsSnapshot {
    let r = registry();
    MetricsSnapshot {
        counters: r
            .counters
            .lock()
            .expect("metrics poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect(),
        gauges: r
            .gauges
            .lock()
            .expect("metrics poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect(),
        histograms: r
            .histograms
            .lock()
            .expect("metrics poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect(),
    }
}

/// Zeroes every registered metric (registrations and handles stay valid).
pub fn reset() {
    let r = registry();
    for c in r.counters.lock().expect("metrics poisoned").values() {
        c.reset();
    }
    for g in r.gauges.lock().expect("metrics poisoned").values() {
        g.reset();
    }
    for h in r.histograms.lock().expect("metrics poisoned").values() {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_tile_the_u64_range() {
        // Identity below SUB, contiguous and monotone after.
        for v in 0..64u64 {
            let b = bucket_of(v);
            assert!(bucket_lo(b) <= v, "v={v} b={b}");
            if b + 1 < NBUCKETS {
                assert!(v < bucket_lo(b + 1), "v={v} b={b}");
            }
        }
        for shift in 3..63 {
            let v = 1u64 << shift;
            assert_eq!(bucket_lo(bucket_of(v)), v);
        }
        assert_eq!(bucket_of(u64::MAX), NBUCKETS - 1);
        // Relative bucket width ≤ 1/8 of the value at the octave floor.
        let v = 1_000_000u64;
        let b = bucket_of(v);
        let width = bucket_lo(b + 1) - bucket_lo(b);
        assert!(width as f64 / v as f64 <= 0.125 + 1e-9);
    }

    #[test]
    fn counter_sums_across_threads() {
        let c = Arc::new(Counter::default());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_set_add_get() {
        let g = Gauge::default();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_percentiles_are_order_of_magnitude_right() {
        let h = Histogram::default();
        // 100 observations: 1..=100.
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert!((s.mean() - 50.5).abs() < 1e-9);
        // Bucket midpoints: within one bucket (≤ 12.5 %) of the exact value.
        assert!(s.p50 >= 44 && s.p50 <= 57, "p50={}", s.p50);
        assert!(s.p95 >= 84 && s.p95 <= 107, "p95={}", s.p95);
        assert!(s.p99 >= 87 && s.p99 <= 112, "p99={}", s.p99);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let h = Histogram::default();
        let s = h.snapshot();
        assert_eq!(s, HistogramSnapshot::default());
    }

    #[test]
    fn registry_returns_same_handle_and_snapshots_sorted() {
        let a = counter("t_reg.b");
        let b = counter("t_reg.b");
        let _ = counter("t_reg.a");
        a.add(5);
        b.add(2);
        let snap = snapshot();
        let names: Vec<&str> = snap
            .counters
            .iter()
            .map(|(n, _)| n.as_str())
            .filter(|n| n.starts_with("t_reg."))
            .collect();
        assert_eq!(names, vec!["t_reg.a", "t_reg.b"]);
        let total = snap.counters.iter().find(|(n, _)| n == "t_reg.b").unwrap().1;
        assert_eq!(total, 7);
    }
}
