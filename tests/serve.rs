//! End-to-end tests of `pqe serve`: the server is a real child process,
//! the client speaks the NDJSON protocol over a real socket, and the core
//! contract — a served estimate is **byte-identical** to the same CLI
//! invocation, at any worker-shard count — is asserted on the printed
//! digits. Also covers the sharded-execution behaviours: queue-depth
//! backpressure, single-flight coalescing of concurrent identical
//! requests, and the per-shard `metrics` gauges.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::Barrier;
use std::time::Duration;

fn pqe() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pqe"))
}

fn write_db(content: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "pqe-serve-test-{}-{:?}.pdb",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::write(&path, content).unwrap();
    path
}

const PATH3_DB: &str = "\
1/2 R1(a,b)
1/3 R2(b,c)
2/3 R2(b,d)
1/5 R3(c,e)
3/4 R3(d,e)
";

/// A `pqe serve` child on an ephemeral port, killed on drop.
struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    fn start(db: &std::path::Path, extra: &[&str]) -> ServerProc {
        let mut child = pqe()
            .args(["serve", "--db"])
            .arg(db)
            .args(["--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap();
        // The first stdout line announces the bound address.
        let stdout = child.stdout.as_mut().unwrap();
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .expect("address in announce line")
            .to_owned();
        assert!(
            line.contains("listening"),
            "unexpected announce line: {line:?}"
        );
        ServerProc { child, addr }
    }

    fn connect(&self) -> TcpStream {
        TcpStream::connect(&self.addr).unwrap()
    }

    /// Sends `shutdown` and waits for a clean exit.
    fn shutdown(mut self) {
        let mut c = self.connect();
        c.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        let mut resp = String::new();
        BufReader::new(c).read_line(&mut resp).unwrap();
        assert!(resp.contains("\"ok\":true"), "shutdown response: {resp}");
        let status = self.child.wait().unwrap();
        assert!(status.success(), "server exit status {status:?}");
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn roundtrip(stream: &mut TcpStream, line: &str) -> String {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    resp
}

/// Extracts the string value of `"field":"…"` from a one-line JSON response.
fn json_str_field<'a>(resp: &'a str, field: &str) -> &'a str {
    let tag = format!("\"{field}\":\"");
    let start = resp.find(&tag).unwrap_or_else(|| panic!("no {field} in {resp}")) + tag.len();
    let end = resp[start..].find('"').unwrap() + start;
    &resp[start..end]
}

/// Extracts the numeric value of `"field":N` from a one-line JSON response.
fn json_num_field(resp: &str, field: &str) -> f64 {
    let tag = format!("\"{field}\":");
    let start = resp.find(&tag).unwrap_or_else(|| panic!("no {field} in {resp}")) + tag.len();
    let end = resp[start..]
        .find(|c: char| c != '-' && c != '.' && c != 'e' && c != '+' && !c.is_ascii_digit())
        .map(|i| i + start)
        .unwrap_or(resp.len());
    resp[start..end].parse().unwrap_or_else(|_| panic!("bad number for {field} in {resp}"))
}

#[test]
fn served_estimate_is_byte_identical_to_cli_at_any_shard_count() {
    let db = write_db(PATH3_DB);
    let query = "R1(x,y), R2(y,z), R3(z,w)";

    // CLI digits at a fixed (ε, seed), single-threaded.
    let out = pqe()
        .args(["estimate", "--db"])
        .arg(&db)
        .args([
            "--query", query, "--method", "fpras", "--epsilon", "0.25", "--seed", "99",
            "--threads", "1",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let cli_digits = stdout
        .split('≈')
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .expect("digits in CLI output")
        .to_owned();

    let req = format!(
        r#"{{"op":"estimate","query":"{query}","method":"fpras","epsilon":0.25,"seed":99}}"#
    );

    // One worker shard: cache/memo tags are deterministic (every request
    // lands on the same private cache), digits must match the CLI.
    let server = ServerProc::start(&db, &["--workers", "1", "--threads", "4"]);
    let mut c = server.connect();
    let resp = roundtrip(&mut c, &req);
    assert!(resp.contains("\"ok\":true"), "response: {resp}");
    assert_eq!(json_str_field(&resp, "cache"), "miss");
    assert_eq!(json_str_field(&resp, "probability"), cli_digits);

    // Again: now a plan hit and a result-memo hit, same digits.
    let resp = roundtrip(&mut c, &req);
    assert_eq!(json_str_field(&resp, "cache"), "hit");
    assert_eq!(json_str_field(&resp, "memo"), "hit");
    assert_eq!(json_str_field(&resp, "probability"), cli_digits);

    // A different seed re-executes the shared plan: memo miss, cache hit.
    let req2 = req.replace("\"seed\":99", "\"seed\":100");
    let resp = roundtrip(&mut c, &req2);
    assert_eq!(json_str_field(&resp, "cache"), "hit");
    assert_eq!(json_str_field(&resp, "memo"), "miss");
    server.shutdown();

    // Four worker shards, different request threads: the shard count and
    // thread count must not change a digit.
    let server = ServerProc::start(&db, &["--workers", "4", "--threads", "2"]);
    let mut c = server.connect();
    for _ in 0..3 {
        let resp = roundtrip(&mut c, &req);
        assert!(resp.contains("\"ok\":true"), "response: {resp}");
        assert_eq!(json_str_field(&resp, "probability"), cli_digits);
    }
    server.shutdown();
    let _ = std::fs::remove_file(&db);
}

#[test]
fn concurrent_identical_requests_coalesce_to_one_evaluation() {
    let db = write_db(PATH3_DB);
    let server = ServerProc::start(&db, &["--workers", "4"]);

    // Eight clients fire a byte-identical request at once; the delay knob
    // keeps the leader's evaluation in flight while the rest arrive.
    const CLIENTS: usize = 8;
    let req = "{\"op\":\"estimate\",\"query\":\"R1(x,y), R2(y,z), R3(z,w)\",\
               \"method\":\"fpras\",\"epsilon\":0.25,\"seed\":42,\"delay_ms\":300}";
    let barrier = Barrier::new(CLIENTS);
    let responses: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let mut c = server.connect();
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    roundtrip(&mut c, req)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Byte-identical responses for byte-identical requests.
    for r in &responses {
        assert!(r.contains("\"ok\":true"), "response: {r}");
        assert_eq!(r, &responses[0], "coalesced responses must match verbatim");
    }

    // Exactly one evaluation ran: the leader's. Everyone else either
    // coalesced onto its flight or replayed its result memo.
    let mut c = server.connect();
    let metrics = roundtrip(&mut c, r#"{"op":"metrics"}"#);
    assert_eq!(json_num_field(&metrics, "serve.executions"), 1.0, "metrics: {metrics}");
    let samples = json_num_field(&metrics, "fpras.samples");
    assert!(samples > 0.0, "metrics: {metrics}");
    let stats = roundtrip(&mut c, r#"{"op":"stats"}"#);
    assert!(json_num_field(&stats, "coalesced") >= 1.0, "stats: {stats}");

    // The sampler counters are quiescent: a second read sees the same
    // fpras.samples — nothing kept evaluating in the background.
    let metrics2 = roundtrip(&mut c, r#"{"op":"metrics"}"#);
    assert_eq!(json_num_field(&metrics2, "fpras.samples"), samples);

    server.shutdown();
    let _ = std::fs::remove_file(&db);
}

#[test]
fn saturated_queue_returns_structured_overload() {
    let db = write_db(PATH3_DB);
    // --max-inflight is the legacy alias for --queue-depth: one worker,
    // one queue slot.
    let server = ServerProc::start(&db, &["--workers", "1", "--max-inflight", "1"]);

    // First connection occupies the only worker via the delay knob
    // (distinct seeds so the three requests never coalesce).
    let mut busy = server.connect();
    busy.write_all(
        b"{\"op\":\"estimate\",\"query\":\"R1(x,y), R2(y,z), R3(z,w)\",\"method\":\"fpras\",\"seed\":1,\"delay_ms\":1500}\n",
    )
    .unwrap();
    busy.flush().unwrap();
    std::thread::sleep(Duration::from_millis(400));

    // Second fills the single queue slot.
    let mut queued = server.connect();
    queued
        .write_all(
            b"{\"op\":\"estimate\",\"query\":\"R1(x,y), R2(y,z), R3(z,w)\",\"method\":\"fpras\",\"seed\":2,\"delay_ms\":100}\n",
        )
        .unwrap();
    queued.flush().unwrap();
    std::thread::sleep(Duration::from_millis(200));

    // Third finds the queue full: immediate structured rejection.
    let mut fast = server.connect();
    let resp = roundtrip(
        &mut fast,
        r#"{"op":"estimate","query":"R1(x,y), R2(y,z), R3(z,w)","method":"fpras","seed":3}"#,
    );
    assert!(resp.contains("\"ok\":false"), "response: {resp}");
    assert_eq!(json_str_field(&resp, "error"), "overloaded");
    assert!(resp.contains("queue full"), "response: {resp}");

    // The occupied and queued requests still complete successfully.
    for stream in [&mut busy, &mut queued] {
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        assert!(resp.contains("\"ok\":true"), "delayed response: {resp}");
    }

    server.shutdown();
    let _ = std::fs::remove_file(&db);
}

#[test]
fn stats_and_classify_round_trip() {
    let db = write_db(PATH3_DB);
    let server = ServerProc::start(&db, &["--workers", "2", "--queue-depth", "32"]);
    let mut c = server.connect();

    let resp = roundtrip(&mut c, r#"{"op":"classify","query":"R1(x,y), R2(y,z), R3(z,w)"}"#);
    assert!(resp.contains("\"ok\":true"), "response: {resp}");
    assert!(resp.contains("\"three_path\":true"), "response: {resp}");
    assert_eq!(json_str_field(&resp, "verdict"), "fpras-only");

    let resp = roundtrip(&mut c, r#"{"op":"stats"}"#);
    assert!(resp.contains("\"ok\":true"), "response: {resp}");
    assert!(resp.contains("\"classifies\":1"), "response: {resp}");
    assert!(resp.contains("\"facts\":5"), "response: {resp}");
    // The concurrency knobs are visible.
    assert!(resp.contains("\"workers\":2"), "response: {resp}");
    assert!(resp.contains("\"queue_capacity\":32"), "response: {resp}");

    server.shutdown();
    let _ = std::fs::remove_file(&db);
}

#[test]
fn metrics_op_reports_queue_shard_and_histogram_gauges() {
    let db = write_db(PATH3_DB);
    // One worker: hit/miss counts land deterministically on shard 0.
    let server = ServerProc::start(&db, &["--workers", "1"]);
    let mut c = server.connect();

    // Generate some traffic: one estimate miss, one memo hit.
    let req = r#"{"op":"estimate","query":"R1(x,y), R2(y,z), R3(z,w)","method":"fpras","epsilon":0.25,"seed":7}"#;
    assert!(roundtrip(&mut c, req).contains("\"ok\":true"));
    assert!(roundtrip(&mut c, req).contains("\"ok\":true"));

    let resp = roundtrip(&mut c, r#"{"op":"metrics"}"#);
    assert!(resp.contains("\"ok\":true"), "response: {resp}");
    assert_eq!(json_str_field(&resp, "op"), "metrics");
    // Request-latency and queue-wait histograms with percentiles.
    for key in [
        "\"serve.request_us.estimate\":{",
        "\"serve.queue_wait_us\":{",
        "\"p50\":",
        "\"p95\":",
        "\"p99\":",
    ] {
        assert!(resp.contains(key), "missing {key} in: {resp}");
    }
    // The two estimate requests are both in the per-op histogram.
    assert!(
        resp.contains("\"serve.request_us.estimate\":{\"count\":2"),
        "response: {resp}"
    );
    // Queue state: both requests were enqueued, none rejected.
    assert!(resp.contains("\"queue\":{"), "response: {resp}");
    assert_eq!(json_num_field(&resp, "serve.enqueued"), 2.0, "response: {resp}");
    assert_eq!(json_num_field(&resp, "serve.queue_rejected"), 0.0, "response: {resp}");
    // Per-shard occupancy/hit-rate gauges: one miss then one plan hit.
    assert!(resp.contains("\"shards\":[{"), "response: {resp}");
    assert!(resp.contains("\"jobs\":2"), "response: {resp}");
    assert!(resp.contains("\"hit_rate\":0.5"), "response: {resp}");
    // Aggregate cache counters and the single-flight counter.
    assert!(resp.contains("\"cache\":{"), "response: {resp}");
    assert!(resp.contains("\"hits\":1"), "response: {resp}");
    assert!(resp.contains("\"misses\":1"), "response: {resp}");
    assert!(
        resp.contains("\"serve.singleflight_coalesced\":0"),
        "response: {resp}"
    );
    // Satellite: stats carries version + uptime.
    let stats = roundtrip(&mut c, r#"{"op":"stats"}"#);
    assert_eq!(json_str_field(&stats, "version"), env!("CARGO_PKG_VERSION"));
    assert!(stats.contains("\"uptime_s\":"), "response: {stats}");

    server.shutdown();
    let _ = std::fs::remove_file(&db);
}

#[test]
fn unknown_method_is_a_structured_bad_request_with_hint() {
    let db = write_db(PATH3_DB);
    let server = ServerProc::start(&db, &["--workers", "1"]);
    let mut c = server.connect();

    // A typo'd method must never be silently routed as `auto`: the router's
    // parser rejects it with a Levenshtein hint.
    let resp = roundtrip(&mut c, r#"{"op":"estimate","query":"R1(x,y)","method":"fprs"}"#);
    assert!(resp.contains("\"ok\":false"), "response: {resp}");
    assert_eq!(json_str_field(&resp, "error"), "bad_request");
    assert!(resp.contains("did you mean"), "response: {resp}");
    assert!(resp.contains("fpras"), "response: {resp}");

    // Legacy CLI-only methods are not served either.
    let resp = roundtrip(&mut c, r#"{"op":"estimate","query":"R1(x,y)","method":"brute"}"#);
    assert!(resp.contains("\"ok\":false"), "response: {resp}");
    assert_eq!(json_str_field(&resp, "error"), "bad_request");

    // The connection stays usable and the route is reported on success.
    let resp = roundtrip(&mut c, r#"{"op":"estimate","query":"R1(x,y)"}"#);
    assert!(resp.contains("\"ok\":true"), "response: {resp}");
    assert_eq!(json_str_field(&resp, "route"), "lifted");
    assert!(resp.contains("\"rationale\":\"auto: safe"), "response: {resp}");

    server.shutdown();
    let _ = std::fs::remove_file(&db);
}

#[test]
fn evidence_round_trip_matches_cli_and_reports_routes() {
    let db = write_db(PATH3_DB);
    let query = "R1(x,y), R2(y,z), R3(z,w)";

    // CLI conditional digits at a fixed (ε, seed), single-threaded.
    let out = pqe()
        .args(["estimate", "--db"])
        .arg(&db)
        .args([
            "--query", query, "--evidence", "R1('a','b')", "--epsilon", "0.25", "--seed",
            "99", "--threads", "1",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let cli_digits = stdout
        .split('≈')
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .expect("digits in CLI output")
        .to_owned();

    let server = ServerProc::start(&db, &["--workers", "1", "--threads", "1"]);
    let mut c = server.connect();
    let req = format!(
        r#"{{"op":"estimate","query":"{query}","evidence":"R1('a','b')","epsilon":0.25,"seed":99,"threads":1}}"#
    );
    let resp = roundtrip(&mut c, &req);
    assert!(resp.contains("\"ok\":true"), "response: {resp}");
    assert_eq!(json_str_field(&resp, "probability"), cli_digits);
    // The 3-path joint is unsafe → FPRAS; ground evidence needs no routed
    // evaluation at all.
    assert_eq!(json_str_field(&resp, "route"), "fpras");
    assert_eq!(json_str_field(&resp, "evidence_route"), "exact-product");
    assert_eq!(json_str_field(&resp, "p_evidence"), "0.500000");
    assert_eq!(json_str_field(&resp, "evidence"), "R1('a','b')");
    assert_eq!(json_str_field(&resp, "cache"), "miss");

    // Same request again: the conditional plan is cached (compiled once),
    // and the digits are reproduced exactly.
    let resp = roundtrip(&mut c, &req);
    assert_eq!(json_str_field(&resp, "cache"), "hit");
    assert_eq!(json_str_field(&resp, "probability"), cli_digits);

    // Evidence changes the plan key: same query without evidence is a
    // distinct cache entry, not a collision.
    let bare = format!(r#"{{"op":"estimate","query":"{query}","epsilon":0.25,"seed":99}}"#);
    let resp = roundtrip(&mut c, &bare);
    assert_eq!(json_str_field(&resp, "cache"), "miss");

    // Impossible evidence: structured eval_error naming P(E) = 0.
    let resp = roundtrip(
        &mut c,
        &format!(r#"{{"op":"estimate","query":"{query}","evidence":"R1('zz','zz')"}}"#),
    );
    assert!(resp.contains("\"ok\":false"), "response: {resp}");
    assert_eq!(json_str_field(&resp, "error"), "eval_error");
    assert!(resp.contains("P(E) = 0"), "response: {resp}");

    server.shutdown();
    let _ = std::fs::remove_file(&db);
}

#[test]
fn unknown_option_suggests_the_intended_flag() {
    let out = pqe()
        .args(["estimate", "--db", "/dev/null", "--query", "R(x)", "--thread", "2"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("did you mean --threads"),
        "stderr: {stderr}"
    );
}

#[test]
fn serve_rejects_unknown_option_with_hint() {
    let out = pqe()
        .args(["serve", "--db", "/dev/null", "--max-inflght", "2"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("did you mean --max-inflight"),
        "stderr: {stderr}"
    );
    // The new knobs hint too.
    let out = pqe()
        .args(["serve", "--db", "/dev/null", "--worker", "2"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("did you mean --workers"), "stderr: {stderr}");
}

#[test]
fn server_reports_db_load_errors_with_context() {
    let db = write_db("1/2 R1(a,b)\n0.x5 R1(b,c)\n");
    let mut child = pqe()
        .args(["serve", "--db"])
        .arg(&db)
        .args(["--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let status = child.wait().unwrap();
    assert!(!status.success());
    let mut stderr = String::new();
    child.stderr.take().unwrap().read_to_string(&mut stderr).unwrap();
    assert!(stderr.contains("line 2"), "stderr: {stderr}");
    assert!(stderr.contains("0.x5 R1(b,c)"), "stderr: {stderr}");
    let _ = std::fs::remove_file(&db);
}
