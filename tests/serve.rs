//! End-to-end tests of `pqe serve`: the server is a real child process,
//! the client speaks the NDJSON protocol over a real socket, and the core
//! contract — a served estimate is **byte-identical** to the same CLI
//! invocation — is asserted on the printed digits.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn pqe() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pqe"))
}

fn write_db(content: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "pqe-serve-test-{}-{:?}.pdb",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::write(&path, content).unwrap();
    path
}

const PATH3_DB: &str = "\
1/2 R1(a,b)
1/3 R2(b,c)
2/3 R2(b,d)
1/5 R3(c,e)
3/4 R3(d,e)
";

/// A `pqe serve` child on an ephemeral port, killed on drop.
struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    fn start(db: &std::path::Path, extra: &[&str]) -> ServerProc {
        let mut child = pqe()
            .args(["serve", "--db"])
            .arg(db)
            .args(["--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap();
        // The first stdout line announces the bound address.
        let stdout = child.stdout.as_mut().unwrap();
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .expect("address in announce line")
            .to_owned();
        assert!(
            line.contains("listening"),
            "unexpected announce line: {line:?}"
        );
        ServerProc { child, addr }
    }

    fn connect(&self) -> TcpStream {
        TcpStream::connect(&self.addr).unwrap()
    }

    /// Sends `shutdown` and waits for a clean exit.
    fn shutdown(mut self) {
        let mut c = self.connect();
        c.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        let mut resp = String::new();
        BufReader::new(c).read_line(&mut resp).unwrap();
        assert!(resp.contains("\"ok\":true"), "shutdown response: {resp}");
        let status = self.child.wait().unwrap();
        assert!(status.success(), "server exit status {status:?}");
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn roundtrip(stream: &mut TcpStream, line: &str) -> String {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    resp
}

/// Extracts the string value of `"field":"…"` from a one-line JSON response.
fn json_str_field<'a>(resp: &'a str, field: &str) -> &'a str {
    let tag = format!("\"{field}\":\"");
    let start = resp.find(&tag).unwrap_or_else(|| panic!("no {field} in {resp}")) + tag.len();
    let end = resp[start..].find('"').unwrap() + start;
    &resp[start..end]
}

#[test]
fn served_estimate_is_byte_identical_to_cli() {
    let db = write_db(PATH3_DB);
    let query = "R1(x,y), R2(y,z), R3(z,w)";

    // CLI digits at a fixed (ε, seed), single-threaded.
    let out = pqe()
        .args(["estimate", "--db"])
        .arg(&db)
        .args([
            "--query", query, "--method", "fpras", "--epsilon", "0.25", "--seed", "99",
            "--threads", "1",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let cli_digits = stdout
        .split('≈')
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .expect("digits in CLI output")
        .to_owned();

    let server = ServerProc::start(&db, &["--threads", "4"]);
    let mut c = server.connect();
    // Served at 4 worker threads: thread count must not change the digits.
    let req = format!(
        r#"{{"op":"estimate","query":"{query}","method":"fpras","epsilon":0.25,"seed":99}}"#
    );
    let resp = roundtrip(&mut c, &req);
    assert!(resp.contains("\"ok\":true"), "response: {resp}");
    assert_eq!(json_str_field(&resp, "cache"), "miss");
    assert_eq!(json_str_field(&resp, "probability"), cli_digits);

    // Again: now a plan hit and a result-memo hit, same digits.
    let resp = roundtrip(&mut c, &req);
    assert_eq!(json_str_field(&resp, "cache"), "hit");
    assert_eq!(json_str_field(&resp, "memo"), "hit");
    assert_eq!(json_str_field(&resp, "probability"), cli_digits);

    // A different seed re-executes the shared plan: memo miss, cache hit.
    let req2 = req.replace("\"seed\":99", "\"seed\":100");
    let resp = roundtrip(&mut c, &req2);
    assert_eq!(json_str_field(&resp, "cache"), "hit");
    assert_eq!(json_str_field(&resp, "memo"), "miss");

    server.shutdown();
    let _ = std::fs::remove_file(&db);
}

#[test]
fn second_concurrent_request_gets_structured_overload() {
    let db = write_db(PATH3_DB);
    let server = ServerProc::start(&db, &["--max-inflight", "1"]);

    // First connection occupies the single slot via the delay knob.
    let mut slow = server.connect();
    slow.write_all(
        b"{\"op\":\"estimate\",\"query\":\"R1(x,y), R2(y,z), R3(z,w)\",\"method\":\"fpras\",\"delay_ms\":1500}\n",
    )
    .unwrap();
    slow.flush().unwrap();
    std::thread::sleep(Duration::from_millis(400));

    let mut fast = server.connect();
    let resp = roundtrip(
        &mut fast,
        r#"{"op":"estimate","query":"R1(x,y), R2(y,z), R3(z,w)","method":"fpras"}"#,
    );
    assert!(resp.contains("\"ok\":false"), "response: {resp}");
    assert_eq!(json_str_field(&resp, "error"), "overloaded");

    // The occupied request still completes successfully.
    let mut reader = BufReader::new(slow.try_clone().unwrap());
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    assert!(resp.contains("\"ok\":true"), "slow response: {resp}");

    server.shutdown();
    let _ = std::fs::remove_file(&db);
}

#[test]
fn stats_and_classify_round_trip() {
    let db = write_db(PATH3_DB);
    let server = ServerProc::start(&db, &[]);
    let mut c = server.connect();

    let resp = roundtrip(&mut c, r#"{"op":"classify","query":"R1(x,y), R2(y,z), R3(z,w)"}"#);
    assert!(resp.contains("\"ok\":true"), "response: {resp}");
    assert!(resp.contains("\"three_path\":true"), "response: {resp}");
    assert_eq!(json_str_field(&resp, "verdict"), "fpras-only");

    let resp = roundtrip(&mut c, r#"{"op":"stats"}"#);
    assert!(resp.contains("\"ok\":true"), "response: {resp}");
    assert!(resp.contains("\"classifies\":1"), "response: {resp}");
    assert!(resp.contains("\"facts\":5"), "response: {resp}");

    server.shutdown();
    let _ = std::fs::remove_file(&db);
}

#[test]
fn metrics_op_reports_latency_histograms_and_cache_counters() {
    let db = write_db(PATH3_DB);
    let server = ServerProc::start(&db, &[]);
    let mut c = server.connect();

    // Generate some traffic: one estimate miss, one hit.
    let req = r#"{"op":"estimate","query":"R1(x,y), R2(y,z), R3(z,w)","method":"fpras","epsilon":0.25,"seed":7}"#;
    assert!(roundtrip(&mut c, req).contains("\"ok\":true"));
    assert!(roundtrip(&mut c, req).contains("\"ok\":true"));

    let resp = roundtrip(&mut c, r#"{"op":"metrics"}"#);
    assert!(resp.contains("\"ok\":true"), "response: {resp}");
    assert_eq!(json_str_field(&resp, "op"), "metrics");
    // Request-latency histograms with percentiles.
    for key in [
        "\"serve.request_us.estimate\":{",
        "\"serve.read_us\":{",
        "\"serve.eval_us\":{",
        "\"serve.write_us\":{",
        "\"p50\":",
        "\"p95\":",
        "\"p99\":",
    ] {
        assert!(resp.contains(key), "missing {key} in: {resp}");
    }
    // The two estimate requests are both in the per-op histogram.
    assert!(
        resp.contains("\"serve.request_us.estimate\":{\"count\":2"),
        "response: {resp}"
    );
    // Cache and admission counters: 1 miss then 1 hit; the two estimates
    // passed admission (stats/metrics ops are not admission-gated).
    assert!(resp.contains("\"cache\":{"), "response: {resp}");
    assert!(resp.contains("\"hits\":1"), "response: {resp}");
    assert!(resp.contains("\"misses\":1"), "response: {resp}");
    assert!(resp.contains("\"serve.admitted\":2"), "response: {resp}");
    assert!(
        resp.contains("\"serve.admission_rejected\":0"),
        "response: {resp}"
    );
    // Satellite: stats carries version + uptime.
    let stats = roundtrip(&mut c, r#"{"op":"stats"}"#);
    assert_eq!(json_str_field(&stats, "version"), env!("CARGO_PKG_VERSION"));
    assert!(stats.contains("\"uptime_s\":"), "response: {stats}");

    server.shutdown();
    let _ = std::fs::remove_file(&db);
}

#[test]
fn unknown_option_suggests_the_intended_flag() {
    let out = pqe()
        .args(["estimate", "--db", "/dev/null", "--query", "R(x)", "--thread", "2"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("did you mean --threads"),
        "stderr: {stderr}"
    );
}

#[test]
fn serve_rejects_unknown_option_with_hint() {
    let out = pqe()
        .args(["serve", "--db", "/dev/null", "--max-inflght", "2"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("did you mean --max-inflight"),
        "stderr: {stderr}"
    );
}

#[test]
fn server_reports_db_load_errors_with_context() {
    let db = write_db("1/2 R1(a,b)\n0.x5 R1(b,c)\n");
    let mut child = pqe()
        .args(["serve", "--db"])
        .arg(&db)
        .args(["--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let status = child.wait().unwrap();
    assert!(!status.success());
    let mut stderr = String::new();
    child.stderr.take().unwrap().read_to_string(&mut stderr).unwrap();
    assert!(stderr.contains("line 2"), "stderr: {stderr}");
    assert!(stderr.contains("0.x5 R1(b,c)"), "stderr: {stderr}");
    let _ = std::fs::remove_file(&db);
}
