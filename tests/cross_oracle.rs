//! Cross-oracle integration tests: four independent implementations of
//! `Pr_H(Q)` must agree on shared random instances.
//!
//! * brute force over all worlds (exponential, exact);
//! * lineage materialization + exact weighted model counting (the
//!   intensional approach);
//! * lifted inference (safe queries only, exact);
//! * the paper's reduction with the *exact* tree-counting oracle
//!   substituted for CountNFTA (removes sampling error: any disagreement
//!   is a reduction bug, not noise).

use pqe::arith::Rational;
use pqe::automata::count_trees_exact;
use pqe::core::baselines::{brute_force_pqe, dnf_probability, lifted_pqe, Lineage};
use pqe::core::reductions::build_pqe_automaton;
use pqe::db::{generators, ProbDatabase};
use pqe::query::{analysis, shapes, ConjunctiveQuery};
use pqe_rand::rngs::StdRng;
use pqe_rand::SeedableRng;

fn exact_via_reduction(q: &ConjunctiveQuery, h: &ProbDatabase) -> Rational {
    let pqe = build_pqe_automaton(q, h).unwrap();
    let trees = count_trees_exact(&pqe.nfta, pqe.target_size);
    Rational::new(trees.into(), pqe.denominator.clone())
}

fn check_all_oracles(q: &ConjunctiveQuery, h: &ProbDatabase, ctx: &str) {
    let brute = brute_force_pqe(q, h);
    let lin = Lineage::build(q, h.database(), 200_000);
    assert!(!lin.truncated(), "{ctx}: lineage truncated");
    let wmc = dnf_probability(lin.clauses(), h);
    assert_eq!(wmc, brute, "{ctx}: lineage+WMC disagrees with brute force");

    let reduction = exact_via_reduction(q, h);
    assert_eq!(reduction, brute, "{ctx}: reduction disagrees with brute force");

    if analysis::is_hierarchical(q) && q.is_self_join_free() {
        let lifted = lifted_pqe(q, h).unwrap();
        assert_eq!(lifted, brute, "{ctx}: lifted disagrees with brute force");
    }
}

#[test]
fn oracles_agree_on_random_path_instances() {
    let mut rng = StdRng::seed_from_u64(1001);
    for len in 2..=4usize {
        for trial in 0..3 {
            let db = generators::layered_graph(len, 2, 0.65, &mut rng);
            if db.len() > 13 {
                continue;
            }
            let h = generators::with_random_probs(db, 6, &mut rng);
            check_all_oracles(
                &shapes::path_query(len),
                &h,
                &format!("path len={len} trial={trial}"),
            );
        }
    }
}

#[test]
fn oracles_agree_on_random_star_instances() {
    let mut rng = StdRng::seed_from_u64(1002);
    for arms in 2..=3usize {
        for trial in 0..3 {
            let db = generators::star_data(arms, 2, 2, 0.7, &mut rng);
            if db.len() > 13 {
                continue;
            }
            let h = generators::with_random_probs(db, 5, &mut rng);
            check_all_oracles(
                &shapes::star_query(arms),
                &h,
                &format!("star arms={arms} trial={trial}"),
            );
        }
    }
}

#[test]
fn oracles_agree_on_h0_instances() {
    let mut rng = StdRng::seed_from_u64(1003);
    for trial in 0..4 {
        let db = generators::random_instance(&[("R", 1), ("S", 2), ("T", 1)], 3, 4, &mut rng);
        if db.len() > 12 {
            continue;
        }
        let h = generators::with_random_probs(db, 5, &mut rng);
        check_all_oracles(&shapes::h0_query(), &h, &format!("h0 trial={trial}"));
    }
}

#[test]
fn oracles_agree_on_cyclic_width2_instances() {
    let mut rng = StdRng::seed_from_u64(1004);
    for trial in 0..3 {
        let db =
            generators::random_instance(&[("R1", 2), ("R2", 2), ("R3", 2)], 3, 4, &mut rng);
        if db.len() > 12 {
            continue;
        }
        let h = generators::with_random_probs(db, 4, &mut rng);
        check_all_oracles(&shapes::cycle_query(3), &h, &format!("cycle trial={trial}"));
    }
}

#[test]
fn oracles_agree_with_extreme_probabilities() {
    // Mix of 0, 1, and interior probabilities stresses the
    // dropped-transition paths of the multiplier construction.
    let mut rng = StdRng::seed_from_u64(1005);
    let db = generators::layered_graph_connected(3, 2, 0.7, &mut rng);
    if db.len() <= 13 {
        let mut h = generators::with_random_probs(db, 5, &mut rng);
        let ids: Vec<_> = h.database().fact_ids().collect();
        h.set_prob(ids[0], Rational::one());
        if ids.len() > 2 {
            h.set_prob(ids[2], Rational::zero());
        }
        check_all_oracles(&shapes::path_query(3), &h, "extreme probabilities");
    }
}

#[test]
fn router_agrees_with_itself_across_routes() {
    // For every `ExactAndFpras` query the router has a real choice: auto
    // must pick the lifted route (matching the classification), and the
    // forced-FPRAS route must land within ε of the routed exact answer.
    use pqe::automata::FprasConfig;
    use pqe::core::landscape::{self, Verdict};
    use pqe::core::{Method, Route, RoutedAnswer, RoutedPlan};

    let mut rng = StdRng::seed_from_u64(1007);
    let cases: Vec<(ConjunctiveQuery, ProbDatabase)> = vec![
        {
            let db = generators::layered_graph_connected(2, 2, 0.8, &mut rng);
            (shapes::path_query(2), generators::with_random_probs(db, 6, &mut rng))
        },
        {
            let db = generators::star_data(2, 2, 2, 0.8, &mut rng);
            (shapes::star_query(2), generators::with_random_probs(db, 5, &mut rng))
        },
    ];
    for (i, (q, h)) in cases.iter().enumerate() {
        let class = landscape::classify(q);
        assert_eq!(class.verdict, Verdict::ExactAndFpras, "case {i}: wrong cell");

        let auto = RoutedPlan::compile(q, h, Method::Auto).unwrap();
        assert_eq!(auto.decision.route, Route::Lifted, "case {i}: auto must go lifted");
        assert!(!auto.decision.forced, "case {i}");
        let cfg = FprasConfig::with_epsilon(0.2).with_seed(4242 + i as u64);
        let RoutedAnswer::Exact(exact) = auto.execute(&cfg) else {
            panic!("case {i}: lifted route must answer exactly");
        };
        assert_eq!(exact, brute_force_pqe(q, h), "case {i}: lifted wrong");

        let forced = RoutedPlan::compile(q, h, Method::Fpras).unwrap();
        assert_eq!(forced.decision.route, Route::Fpras, "case {i}");
        assert!(forced.decision.forced, "case {i}");
        let est = forced.execute(&cfg).to_f64();
        let truth = exact.to_f64();
        assert!(
            (est / truth - 1.0).abs() <= 0.2,
            "case {i}: est {est} vs exact {truth}"
        );
    }

    // And where there is no choice (unsafe, FprasOnly), auto must follow
    // the classification to the FPRAS.
    let db = generators::layered_graph_connected(3, 2, 0.8, &mut rng);
    let h = generators::with_random_probs(db, 6, &mut rng);
    let q = shapes::path_query(3);
    assert_eq!(landscape::classify(&q).verdict, Verdict::FprasOnly);
    let auto = RoutedPlan::compile(&q, &h, Method::Auto).unwrap();
    assert_eq!(auto.decision.route, Route::Fpras);
    assert!(auto.decision.rationale.contains("unsafe"), "{}", auto.decision.rationale);
}

#[test]
fn run_based_estimator_agrees_on_pqe_automata() {
    // The run-based importance estimator (unbiased, exact run DP) must
    // agree with exact tree counting on the reduction's automata.
    use pqe::automata::count_nfta_run_based;
    use pqe::core::reductions::build_pqe_automaton;
    let mut rng = StdRng::seed_from_u64(1006);
    let db = generators::layered_graph_connected(3, 2, 0.6, &mut rng);
    let h = generators::with_random_probs(db, 5, &mut rng);
    let q = shapes::path_query(3);
    let pqe = build_pqe_automaton(&q, &h).unwrap();
    let exact = pqe::automata::count_trees_exact(&pqe.nfta, pqe.target_size);
    let est = count_nfta_run_based(&pqe.nfta, pqe.target_size, 3000, 9);
    let rel = est.relative_error_to(&pqe::arith::BigFloat::from_biguint(&exact));
    assert!(rel < 0.15, "exact {exact}, est {est}, rel {rel}");
}
