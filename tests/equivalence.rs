//! Differential equivalence suite for the FPRAS inner-loop rework.
//!
//! The sampling hot path was rebuilt around arena-allocated scratch state,
//! fixed-width (`u128`-first) run-count arithmetic, and batched per-index
//! RNG draws. None of that is allowed to be observable: this suite pins
//! the new path against the `PQE_SLOW_PATH` escape hatch
//! ([`pqe::arith::set_slow_path`]), which forces every [`pqe::arith::FixUint`]
//! into its `BigUint` representation at construction — the historical
//! arithmetic — and asserts bit-identical estimates per seed at 1/2/4/8
//! worker threads, plus scratch-pool-reuse invisibility and a shrinking
//! property over random query/db pairs.

use pqe::automata::FprasConfig;
use pqe::core::{pqe_estimate, ur_estimate};
use pqe::db::{generators, Database, ProbDatabase, Schema};
use pqe::query::shapes;
use pqe_rand::rngs::StdRng;
use pqe_rand::SeedableRng;
use pqe_testkit::prelude::*;
use std::sync::Mutex;

/// Serializes tests that toggle the global slow-path flag, so a "fast"
/// control run can never be silently flipped slow by a neighbour.
static FLAG_LOCK: Mutex<()> = Mutex::new(());

fn fixture() -> (pqe::query::ConjunctiveQuery, ProbDatabase) {
    let mut rng = StdRng::seed_from_u64(0xDE7E_4141);
    let db = generators::layered_graph_connected(3, 3, 0.7, &mut rng);
    let h = generators::with_random_probs(db, 6, &mut rng);
    (shapes::path_query(3), h)
}

#[test]
fn slow_path_matches_fast_path_bitwise_at_every_thread_count() {
    let _guard = FLAG_LOCK.lock().unwrap();
    let (q, h) = fixture();
    let db = h.database().clone();
    for seed in [0x5EEDu64, 0xBEEF, 7] {
        for threads in [1usize, 2, 4, 8] {
            let cfg = FprasConfig::with_epsilon(0.3)
                .with_seed(seed)
                .with_threads(threads);
            pqe::arith::set_slow_path(false);
            let fast_pqe = pqe_estimate(&q, &h, &cfg).unwrap();
            let fast_ur = ur_estimate(&q, &db, &cfg).unwrap();
            pqe::arith::set_slow_path(true);
            let slow_pqe = pqe_estimate(&q, &h, &cfg).unwrap();
            let slow_ur = ur_estimate(&q, &db, &cfg).unwrap();
            pqe::arith::set_slow_path(false);
            assert_eq!(
                fast_pqe.probability.to_string(),
                slow_pqe.probability.to_string(),
                "pqe route, seed={seed:#x}, threads={threads}"
            );
            assert_eq!(
                fast_ur.reliability.to_string(),
                slow_ur.reliability.to_string(),
                "ur route, seed={seed:#x}, threads={threads}"
            );
        }
    }
}

#[test]
fn scratch_pool_reuse_is_invisible() {
    // The thread-local scratch pool persists across estimates on one
    // thread: the second back-to-back run reuses the first run's arenas
    // (non-empty buffers, warmed memo capacity). A fresh thread starts
    // from an empty pool. All three must agree bit for bit.
    let (q, h) = fixture();
    let cfg = FprasConfig::with_epsilon(0.3).with_seed(0x5EED).with_threads(1);
    let first = pqe_estimate(&q, &h, &cfg).unwrap();
    let reused = pqe_estimate(&q, &h, &cfg).unwrap();
    assert_eq!(
        first.probability.to_string(),
        reused.probability.to_string(),
        "back-to-back estimates on one scratch pool"
    );
    let fresh = {
        let (q, h, cfg) = (q.clone(), h.clone(), cfg.clone());
        std::thread::spawn(move || pqe_estimate(&q, &h, &cfg).unwrap())
            .join()
            .unwrap()
    };
    assert_eq!(
        first.probability.to_string(),
        fresh.probability.to_string(),
        "fresh-pool run differs from warmed-pool run"
    );
    // Same invariant along the NFA (string automaton) route.
    let db = h.database().clone();
    let cfg = FprasConfig::with_epsilon(0.3).with_seed(0xBEEF).with_threads(1);
    let a = ur_estimate(&q, &db, &cfg).unwrap();
    let b = ur_estimate(&q, &db, &cfg).unwrap();
    assert_eq!(a.reliability.to_string(), b.reliability.to_string());
}

/// A random tiny layered instance for a path query of length `len` (the
/// `pipeline_properties` generator, kept in sync by hand).
fn tiny_instance(len: usize, edge_bits: u64, width: usize) -> Database {
    let rels: Vec<String> = (1..=len).map(|i| format!("R{i}")).collect();
    let schema = Schema::new(rels.iter().map(|r| (r.as_str(), 2)));
    let mut db = Database::new(schema);
    let mut bit = 0;
    for (i, rel) in rels.iter().enumerate() {
        for a in 0..width {
            for b in 0..width {
                if (edge_bits >> (bit % 64)) & 1 == 1 {
                    let src = format!("n{i}_{a}");
                    let dst = format!("n{}_{b}", i + 1);
                    db.add_fact(rel, &[&src, &dst]).unwrap();
                }
                bit += 1;
            }
        }
    }
    db
}

#[test]
fn slow_and_fast_paths_agree_on_random_instances() {
    // Shrinking property: on arbitrary tiny query/db pairs, the forced
    // BigUint-only arithmetic and the fixed-width fast path produce the
    // same digits at one and at two workers. A failure shrinks to the
    // smallest instance whose sampling walk ever branches on
    // representation.
    let cfg_prop = Config::cases(12).with_corpus("tests/corpus/equivalence.corpus");
    check(
        "slow_and_fast_paths_agree_on_random_instances",
        &cfg_prop,
        &(2usize..4, any::<u64>(), any::<u64>()),
        |&(len, edge_bits, seed)| {
            let db = tiny_instance(len, edge_bits, 2);
            prop_assume!(db.len() >= 1 && db.len() <= 10);
            let mut rng = StdRng::seed_from_u64(seed);
            let h = generators::with_random_probs(db, 4, &mut rng);
            let q = shapes::path_query(len);
            let _guard = FLAG_LOCK.lock().unwrap();
            for threads in [1usize, 2] {
                let cfg = FprasConfig::with_epsilon(0.5)
                    .with_seed(seed)
                    .with_threads(threads);
                pqe::arith::set_slow_path(false);
                let fast = pqe_estimate(&q, &h, &cfg);
                pqe::arith::set_slow_path(true);
                let slow = pqe_estimate(&q, &h, &cfg);
                pqe::arith::set_slow_path(false);
                match (fast, slow) {
                    (Ok(f), Ok(s)) => prop_assert_eq!(
                        f.probability.to_string(),
                        s.probability.to_string()
                    ),
                    (f, s) => prop_assert!(
                        f.is_err() && s.is_err(),
                        "one path errored: fast {:?} slow {:?}",
                        f.is_err(),
                        s.is_err()
                    ),
                }
            }
            Ok(())
        },
    );
}
