//! Empirical validation of Theorem 1's `(1±ε)` w.h.p. guarantee:
//! across independent seeds, the observed relative error of `PQEEstimate`
//! must stay within ε for the vast majority of runs, on both safe and
//! unsafe queries, at more than one ε.

use pqe::arith::BigFloat;
use pqe::automata::FprasConfig;
use pqe::core::baselines::brute_force_pqe;
use pqe::core::{pqe_estimate, ur_estimate};
use pqe::db::generators;
use pqe::query::shapes;
use pqe_rand::rngs::StdRng;
use pqe_rand::SeedableRng;

/// Runs `trials` independent estimates and returns how many landed within
/// the requested relative error.
fn hits_within_epsilon(
    q: &pqe::query::ConjunctiveQuery,
    h: &pqe::db::ProbDatabase,
    epsilon: f64,
    trials: u64,
) -> u64 {
    let exact = BigFloat::from_rational(&brute_force_pqe(q, h));
    (0..trials)
        .filter(|&t| {
            let cfg = FprasConfig::with_epsilon(epsilon).with_seed(0xABCD + t);
            let est = pqe_estimate(q, h, &cfg).unwrap().probability;
            est.relative_error_to(&exact) <= epsilon
        })
        .count() as u64
}

#[test]
fn unsafe_path_query_meets_epsilon_with_high_probability() {
    let mut rng = StdRng::seed_from_u64(2001);
    let db = generators::layered_graph_connected(3, 2, 0.6, &mut rng);
    let h = generators::with_random_probs(db, 5, &mut rng);
    let q = shapes::path_query(3);
    let trials = 12;
    let hits = hits_within_epsilon(&q, &h, 0.2, trials);
    assert!(
        hits >= trials - 1,
        "only {hits}/{trials} runs within ε = 0.2"
    );
}

#[test]
fn tighter_epsilon_still_met() {
    let mut rng = StdRng::seed_from_u64(2002);
    let db = generators::layered_graph_connected(3, 2, 0.5, &mut rng);
    let h = generators::with_random_probs(db, 4, &mut rng);
    let q = shapes::path_query(3);
    let trials = 8;
    let hits = hits_within_epsilon(&q, &h, 0.1, trials);
    assert!(hits >= trials - 1, "only {hits}/{trials} runs within ε = 0.1");
}

#[test]
fn safe_star_query_meets_epsilon() {
    let mut rng = StdRng::seed_from_u64(2003);
    let db = generators::star_data(2, 2, 2, 0.8, &mut rng);
    let h = generators::with_random_probs(db, 6, &mut rng);
    let q = shapes::star_query(2);
    let trials = 8;
    let hits = hits_within_epsilon(&q, &h, 0.15, trials);
    assert!(hits >= trials - 1, "only {hits}/{trials} runs within ε");
}

#[test]
fn ur_estimate_respects_epsilon_across_seeds() {
    let mut rng = StdRng::seed_from_u64(2004);
    let db = generators::layered_graph_connected(3, 2, 0.6, &mut rng);
    let q = shapes::path_query(3);
    let exact = BigFloat::from_biguint(&pqe::core::baselines::brute_force_ur(&q, &db));
    let trials = 10u64;
    let hits = (0..trials)
        .filter(|&t| {
            let cfg = FprasConfig::with_epsilon(0.2).with_seed(0xBEEF + t);
            let est = ur_estimate(&q, &db, &cfg).unwrap().reliability;
            est.relative_error_to(&exact) <= 0.2
        })
        .count() as u64;
    assert!(hits >= trials - 1, "only {hits}/{trials} UR runs within ε");
}

#[test]
fn estimates_are_deterministic_given_config() {
    let mut rng = StdRng::seed_from_u64(2005);
    let db = generators::layered_graph_connected(3, 2, 0.6, &mut rng);
    let h = generators::with_random_probs(db, 4, &mut rng);
    let q = shapes::path_query(3);
    let cfg = FprasConfig::with_epsilon(0.2).with_seed(777);
    let a = pqe_estimate(&q, &h, &cfg).unwrap().probability;
    let b = pqe_estimate(&q, &h, &cfg).unwrap().probability;
    assert_eq!(a, b);
}

#[test]
fn guarantee_grade_config_is_at_least_as_accurate() {
    let mut rng = StdRng::seed_from_u64(2006);
    let db = generators::layered_graph_connected(3, 2, 0.5, &mut rng);
    let h = generators::with_random_probs(db, 4, &mut rng);
    let q = shapes::path_query(3);
    let exact = BigFloat::from_rational(&brute_force_pqe(&q, &h));
    let cfg = FprasConfig::guarantee_grade(0.15).with_seed(31337);
    let est = pqe_estimate(&q, &h, &cfg).unwrap().probability;
    assert!(est.relative_error_to(&exact) <= 0.15);
}
