//! End-to-end conditional queries: the router's `P(Q | E)` plans against
//! brute-force conditioning by world enumeration, on both evidence
//! strategies (ground product and ε-split ratio), through the public
//! umbrella API.

use pqe::arith::Rational;
use pqe::automata::FprasConfig;
use pqe::core::{ConditionalPlan, Method, Route, RouterError};
use pqe::db::{generators, worlds, Database, ProbDatabase, Schema};
use pqe::engine::eval_boolean;
use pqe::query::{parse, ConjunctiveQuery};
use pqe_rand::rngs::StdRng;
use pqe_rand::SeedableRng;

/// Brute-force `P(Q|E)`: sum of world weights where both hold over sum
/// where `E` holds; `None` when `P(E) = 0`.
fn brute_conditional(
    q: &ConjunctiveQuery,
    e: &ConjunctiveQuery,
    h: &ProbDatabase,
) -> Option<Rational> {
    let mut num = Rational::zero();
    let mut den = Rational::zero();
    for world in worlds::enumerate(h.len()) {
        let sub = h.database().subinstance(&world);
        if eval_boolean(e, &sub) {
            let w = h.world_prob(&world);
            if eval_boolean(q, &sub) {
                num = &num + &w;
            }
            den = &den + &w;
        }
    }
    if den.is_zero() {
        None
    } else {
        Some(&num * &den.recip())
    }
}

/// 2-path over R/S plus a disjoint unary relation T for variable evidence.
fn small_instance(seed: u64) -> ProbDatabase {
    let mut db = Database::new(Schema::new([("R", 2), ("S", 2), ("T", 1)]));
    db.add_fact("R", &["a", "b"]).unwrap();
    db.add_fact("R", &["a2", "b"]).unwrap();
    db.add_fact("S", &["b", "c"]).unwrap();
    db.add_fact("S", &["b", "d"]).unwrap();
    db.add_fact("T", &["a"]).unwrap();
    db.add_fact("T", &["c"]).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    generators::with_random_probs(db, 6, &mut rng)
}

#[test]
fn ground_evidence_matches_brute_force_on_random_instances() {
    for seed in [11u64, 12, 13] {
        let h = small_instance(seed);
        let q = parse("R(x,y), S(y,z)").unwrap();
        // Ground evidence over Q's own relations and over the disjoint one.
        for etext in ["S('b','c')", "R('a','b'), S('b','d')", "T('a')"] {
            let e = parse(etext).unwrap();
            let Some(brute) = brute_conditional(&q, &e, &h) else {
                continue; // a random probability of 0 made E impossible
            };
            let plan = ConditionalPlan::compile(&q, &e, &h, Method::Auto).unwrap();
            assert!(plan.evidence_decision().is_none(), "seed {seed} {etext}: ground");
            let r = plan.execute(&FprasConfig::with_epsilon(0.2)).unwrap();
            assert_eq!(
                r.exact.as_ref().unwrap(),
                &brute,
                "seed {seed} evidence {etext}"
            );
            assert!(r.evidence_route.is_none());
            assert!(r.split_epsilon.is_none(), "ground path never splits ε");
        }
    }
}

#[test]
fn variable_evidence_matches_brute_force_on_random_instances() {
    for seed in [21u64, 22, 23] {
        let h = small_instance(seed);
        let q = parse("R(x,y), S(y,z)").unwrap();
        let e = parse("T(w)").unwrap();
        let Some(brute) = brute_conditional(&q, &e, &h) else {
            continue;
        };
        let plan = ConditionalPlan::compile(&q, &e, &h, Method::Auto).unwrap();
        assert!(plan.evidence_decision().is_some(), "seed {seed}: ratio path");
        let r = plan.execute(&FprasConfig::with_epsilon(0.2).with_seed(seed)).unwrap();
        // Q∧E and E are both safe here: the ratio is exact.
        assert_eq!(r.exact.as_ref().unwrap(), &brute, "seed {seed}");
        assert_eq!(r.evidence_route, Some(Route::Lifted));
    }
}

#[test]
fn fpras_terms_stay_within_the_requested_epsilon() {
    // Force the FPRAS on both ratio terms: the ε-split must keep the
    // conditional within (1 ± ε) of the brute-force truth.
    let eps = 0.3;
    for seed in [31u64, 32] {
        let h = small_instance(seed);
        let q = parse("R(x,y), S(y,z)").unwrap();
        let e = parse("T(w)").unwrap();
        let Some(brute) = brute_conditional(&q, &e, &h) else {
            continue;
        };
        let plan = ConditionalPlan::compile(&q, &e, &h, Method::Fpras).unwrap();
        let r = plan
            .execute(&FprasConfig::with_epsilon(eps).with_seed(1000 + seed))
            .unwrap();
        assert!(r.exact.is_none(), "seed {seed}: forced FPRAS is never exact");
        assert_eq!(r.split_epsilon, Some(eps / 3.0), "two estimated terms");
        let est = r.conditional.to_f64();
        let truth = brute.to_f64();
        assert!(
            (est / truth - 1.0).abs() <= eps,
            "seed {seed}: est {est} vs brute {truth}"
        );
    }
}

#[test]
fn conditional_answers_are_deterministic_per_seed() {
    let h = small_instance(41);
    let q = parse("R(x,y), S(y,z)").unwrap();
    let e = parse("T(w)").unwrap();
    let run = || {
        let plan = ConditionalPlan::compile(&q, &e, &h, Method::Fpras).unwrap();
        let r = plan.execute(&FprasConfig::with_epsilon(0.25).with_seed(0xC0)).unwrap();
        format!("{:.12}", r.conditional.to_f64())
    };
    assert_eq!(run(), run());
}

#[test]
fn impossible_evidence_is_a_zero_evidence_error() {
    let h = small_instance(51);
    let q = parse("R(x,y), S(y,z)").unwrap();
    // A fact that is not in the database at all.
    let e = parse("T('missing')").unwrap();
    let err = match ConditionalPlan::compile(&q, &e, &h, Method::Auto) {
        Err(err) => err,
        Ok(_) => panic!("impossible evidence must not compile"),
    };
    assert!(
        matches!(err, RouterError::ZeroEvidence { .. }),
        "got {err}"
    );
    assert!(err.to_string().contains("P(E) = 0"), "{err}");
}
