//! Property-based integration tests: on randomly generated instances, the
//! automaton reductions (evaluated with the *exact* tree/string counting
//! oracles, so no sampling noise) must reproduce brute-force ground truth
//! bit for bit.

use pqe::arith::{BigUint, Rational};
use pqe::automata::count_trees_exact;
use pqe::core::baselines::{brute_force_pqe, brute_force_ur};
use pqe::core::reductions::{build_path_nfa, build_pqe_automaton, build_ur_automaton};
use pqe::db::{Database, ProbDatabase, Schema};
use pqe::query::shapes;
use pqe_testkit::prelude::*;

fn cfg() -> Config {
    Config::cases(24).with_corpus("tests/corpus/pipeline_properties.corpus")
}

/// A random tiny triangle instance for the width-2 cycle query: three
/// binary relations over a 2-element domain, fact presence from a bitmask.
fn tiny_triangle(edge_bits: u64) -> Database {
    let schema = Schema::new([("R1", 2), ("R2", 2), ("R3", 2)]);
    let mut db = Database::new(schema);
    let mut bit = 0;
    for rel in ["R1", "R2", "R3"] {
        for a in 0..2 {
            for b in 0..2 {
                if (edge_bits >> (bit % 64)) & 1 == 1 {
                    db.add_fact(rel, &[&format!("c{a}"), &format!("c{b}")]).unwrap();
                }
                bit += 1;
            }
        }
    }
    db
}

/// A random tiny layered instance for a path query of length `len`:
/// edge presence decided by a bit vector, probabilities from small
/// numerator/denominator pairs.
fn tiny_instance(len: usize, edge_bits: u64, width: usize) -> Database {
    let rels: Vec<String> = (1..=len).map(|i| format!("R{i}")).collect();
    let schema = Schema::new(rels.iter().map(|r| (r.as_str(), 2)));
    let mut db = Database::new(schema);
    let mut bit = 0;
    for (i, rel) in rels.iter().enumerate() {
        for a in 0..width {
            for b in 0..width {
                if (edge_bits >> (bit % 64)) & 1 == 1 {
                    let src = format!("n{i}_{a}");
                    let dst = format!("n{}_{b}", i + 1);
                    db.add_fact(rel, &[&src, &dst]).unwrap();
                }
                bit += 1;
            }
        }
    }
    db
}

fn probs_for(db: &Database, seed_probs: &[(u8, u8)]) -> ProbDatabase {
    let probs: Vec<Rational> = (0..db.len())
        .map(|i| {
            let (w, d) = seed_probs[i % seed_probs.len()];
            let d = (d % 7).max(1) as i64 + 1; // 2..=8
            let w = (w as i64) % (d + 1); // 0..=d
            Rational::from_ratio(w, d as u64)
        })
        .collect();
    ProbDatabase::with_probs(db.clone(), probs).unwrap()
}

#[test]
fn ur_reduction_is_exact_on_random_paths() {
    check(
        "ur_reduction_is_exact_on_random_paths",
        &cfg(),
        &(2usize..4, any::<u64>()),
        |&(len, edge_bits)| {
            let db = tiny_instance(len, edge_bits, 2);
            prop_assume!(db.len() <= 12);
            let q = shapes::path_query(len);
            let ur = build_ur_automaton(&q, &db).unwrap();
            let (nfta, _) = ur.aug.translate();
            let via_automaton = &count_trees_exact(&nfta, ur.target_size)
                * &(&BigUint::one() << ur.dropped_facts as u64);
            prop_assert_eq!(via_automaton, brute_force_ur(&q, &db));
            Ok(())
        },
    );
}

#[test]
fn path_nfa_is_exact_on_random_paths() {
    check(
        "path_nfa_is_exact_on_random_paths",
        &cfg(),
        &(2usize..4, any::<u64>()),
        |&(len, edge_bits)| {
            let db = tiny_instance(len, edge_bits, 2);
            prop_assume!(db.len() <= 12);
            let q = shapes::path_query(len);
            let p = build_path_nfa(&q, &db).unwrap();
            let via_nfa = &p.nfa.count_strings_exact(p.target_len)
                * &(&BigUint::one() << p.dropped_facts as u64);
            prop_assert_eq!(via_nfa, brute_force_ur(&q, &db));
            Ok(())
        },
    );
}

#[test]
fn pqe_reduction_is_exact_on_random_weighted_paths() {
    let gens = (2usize..4, any::<u64>(), vec((any::<u8>(), any::<u8>()), 4..8));
    check(
        "pqe_reduction_is_exact_on_random_weighted_paths",
        &cfg(),
        &gens,
        |(len, edge_bits, seed_probs)| {
            let db = tiny_instance(*len, *edge_bits, 2);
            prop_assume!(db.len() <= 10);
            let h = probs_for(&db, seed_probs);
            let q = shapes::path_query(*len);
            let pqe = build_pqe_automaton(&q, &h).unwrap();
            let trees = count_trees_exact(&pqe.nfta, pqe.target_size);
            let via_automaton = Rational::new(trees.into(), pqe.denominator.clone());
            prop_assert_eq!(via_automaton, brute_force_pqe(&q, &h));
            Ok(())
        },
    );
}

#[test]
fn ur_reduction_is_exact_on_random_triangles() {
    check(
        "ur_reduction_is_exact_on_random_triangles",
        &cfg(),
        &any::<u64>(),
        |&edge_bits| {
            // Width-2 (cyclic) queries: exercises multi-atom bags and the
            // binary branches of the decomposition end to end.
            let db = tiny_triangle(edge_bits);
            prop_assume!(db.len() <= 12);
            let q = shapes::cycle_query(3);
            let ur = build_ur_automaton(&q, &db).unwrap();
            let (nfta, _) = ur.aug.translate();
            let via_automaton = &count_trees_exact(&nfta, ur.target_size)
                * &(&BigUint::one() << ur.dropped_facts as u64);
            prop_assert_eq!(via_automaton, brute_force_ur(&q, &db));
            Ok(())
        },
    );
}

#[test]
fn pqe_reduction_is_exact_on_random_weighted_triangles() {
    let gens = (any::<u64>(), vec((any::<u8>(), any::<u8>()), 4..8));
    check(
        "pqe_reduction_is_exact_on_random_weighted_triangles",
        &cfg(),
        &gens,
        |(edge_bits, seed_probs)| {
            let db = tiny_triangle(*edge_bits);
            prop_assume!(db.len() <= 9);
            let h = probs_for(&db, seed_probs);
            let q = shapes::cycle_query(3);
            let pqe = build_pqe_automaton(&q, &h).unwrap();
            let trees = count_trees_exact(&pqe.nfta, pqe.target_size);
            let via_automaton = Rational::new(trees.into(), pqe.denominator.clone());
            prop_assert_eq!(via_automaton, brute_force_pqe(&q, &h));
            Ok(())
        },
    );
}

#[test]
fn reduction_tree_counts_are_size_concentrated() {
    check(
        "reduction_tree_counts_are_size_concentrated",
        &cfg(),
        &(2usize..4, any::<u64>()),
        |&(len, edge_bits)| {
            // No accepted trees at any size other than the target: the
            // uniform-size property that makes counting at one length valid.
            let db = tiny_instance(len, edge_bits, 2);
            prop_assume!((3..=9).contains(&db.len()));
            let q = shapes::path_query(len);
            let ur = build_ur_automaton(&q, &db).unwrap();
            let (nfta, _) = ur.aug.translate();
            for delta in [-1i64, 1] {
                let off = (ur.target_size as i64 + delta).max(0) as usize;
                if off != ur.target_size && off > 0 {
                    prop_assert!(
                        count_trees_exact(&nfta, off).is_zero(),
                        "accepted trees at off-target size {off}"
                    );
                }
            }
            Ok(())
        },
    );
}
