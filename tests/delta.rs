//! Delta-vs-rebuild property tests: applying a random delta batch through
//! `VersionedDb` must be observationally identical to building the
//! post-delta database from scratch. "Identical" is the strongest form —
//! revalidated plans (reweighted automata, re-solved lifted closed forms)
//! must print the same digits as plans freshly compiled against the
//! rebuilt database, per seed, at 1 and 4 threads, on both routes. The
//! rebuild goes through the canonical text writer (`save_string` →
//! `load_str`), so this also exercises the round-trip guarantee under
//! mutation: surviving facts keep their order, inserts append.

use pqe::automata::FprasConfig;
use pqe::core::{Method, Revalidation, RoutedPlan};
use pqe::db::io::{load_str, save_string};
use pqe::db::ProbDatabase;
use pqe::delta::{Delta, VersionedDb};
use pqe::query::parse;
use pqe_testkit::prelude::*;
use std::collections::HashSet;

fn cfg() -> Config {
    Config::cases(16).with_corpus("tests/corpus/delta.corpus")
}

/// A random triangle instance over relations `R1`, `R2`, `R3` and a
/// 2-element domain. The `(0,1)` fact of every relation is always present
/// so each relation exists in the schema regardless of `edge_bits`.
fn db_text(edge_bits: u64, probs: &[(u8, u8)]) -> String {
    let mut out = String::new();
    let mut bit = 0usize;
    for rel in ["R1", "R2", "R3"] {
        for a in 0..2 {
            for b in 0..2 {
                if (edge_bits >> (bit % 64)) & 1 == 1 || (a == 0 && b == 1) {
                    let (w, d) = probs[bit % probs.len()];
                    let d = (d % 7) as u64 + 2; // 2..=8
                    let w = (w as u64 % d).max(1); // 1..=d
                    out.push_str(&format!("{w}/{d} {rel}(c{a},c{b})\n"));
                }
                bit += 1;
            }
        }
    }
    out
}

/// Builds a valid random batch against `h`: re-probabilities and deletes
/// target existing facts (never a fact already deleted earlier in the
/// batch), inserts use fresh constants so they can't collide.
fn random_delta(h: &ProbDatabase, picks: &[(u8, u8, u8)]) -> Delta {
    let db = h.database();
    let facts: Vec<String> = db.fact_ids().map(|id| db.display_fact(id)).collect();
    let mut text = String::new();
    let mut gone: HashSet<String> = HashSet::new();
    for (i, &(op, target, pnum)) in picks.iter().enumerate() {
        let d = (pnum % 7) as u64 + 2;
        match op % 3 {
            0 => {
                let f = &facts[target as usize % facts.len()];
                if !gone.contains(f) {
                    text.push_str(&format!("~ 1/{d} {f}\n"));
                }
            }
            1 => {
                let f = facts[target as usize % facts.len()].clone();
                if gone.insert(f.clone()) {
                    text.push_str(&format!("- {f}\n"));
                }
            }
            _ => {
                let rel = ["R1", "R2", "R3"][target as usize % 3];
                text.push_str(&format!("+ 1/{d} {rel}(zz{i},c0)\n"));
            }
        }
    }
    Delta::parse_str(&text).expect("generated delta parses")
}

fn digits(plan: &RoutedPlan, cfg: &FprasConfig) -> String {
    format!("{:.15e}", plan.execute(cfg).to_f64())
}

#[test]
fn delta_equals_rebuild_bit_for_bit() {
    let gens = (
        any::<u64>(),
        vec((any::<u8>(), any::<u8>()), 4..8),
        vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..5),
        any::<u64>(),
    );
    check(
        "delta_equals_rebuild_bit_for_bit",
        &cfg(),
        &gens,
        |(edge_bits, probs, picks, seed)| {
            let base = load_str(&db_text(*edge_bits, probs)).unwrap();
            let delta = random_delta(&base, picks);
            prop_assume!(!delta.is_empty());

            // Safe (routes lifted) and #P-hard (routes FPRAS) queries over
            // the same mutating relations.
            let safe_q = parse("R1(x,y), R2(y,z)").unwrap();
            let hard_q = parse("R1(x,y), R2(y,z), R3(z,x)").unwrap();

            // Compile against the base, mutate, revalidate in place.
            let mut vdb = VersionedDb::new(base);
            let mut plans = [
                RoutedPlan::compile_at(&safe_q, vdb.current(), Method::Auto, vdb.epochs())
                    .unwrap(),
                RoutedPlan::compile_at(&hard_q, vdb.current(), Method::Fpras, vdb.epochs())
                    .unwrap(),
            ];
            let report = vdb.apply(&delta);
            prop_assert!(report.is_ok(), "apply failed: {}", report.unwrap_err());

            // A delta can empty a relation, after which queries over it no
            // longer compile on a rebuilt database; out of scope here.
            let canonical = save_string(vdb.current());
            prop_assume!(["R1(", "R2(", "R3("].iter().all(|r| canonical.contains(r)));

            let prob_only = delta.is_probability_only();
            for plan in plans.iter_mut() {
                let r = plan.revalidate(vdb.current(), vdb.epochs());
                prop_assert!(r.is_ok(), "revalidate failed: {}", r.unwrap_err());
                if prob_only {
                    prop_assert!(
                        matches!(
                            r.unwrap(),
                            Revalidation::Current
                                | Revalidation::Refreshed { incremental: true }
                        ),
                        "probability-only delta must never force a recompile"
                    );
                }
            }

            // From-scratch replica of the post-delta database, via the
            // canonical writer (preserves surviving-fact order).
            let rebuilt = load_str(&canonical).unwrap();
            let fresh = [
                RoutedPlan::compile(&safe_q, &rebuilt, Method::Auto).unwrap(),
                RoutedPlan::compile(&hard_q, &rebuilt, Method::Fpras).unwrap(),
            ];

            let mut single_threaded: Vec<String> = Vec::new();
            for threads in [1usize, 4] {
                let fc = FprasConfig::with_epsilon(0.4).with_seed(*seed).with_threads(threads);
                for (plan, fresh_plan) in plans.iter().zip(fresh.iter()) {
                    let got = digits(plan, &fc);
                    prop_assert_eq!(
                        &got,
                        &digits(fresh_plan, &fc),
                        "revalidated vs rebuilt digits diverged at {} thread(s)",
                        threads
                    );
                    single_threaded.push(got);
                }
            }
            // The thread count must never change an estimate.
            let (one, four) = single_threaded.split_at(plans.len());
            prop_assert_eq!(one, four, "digits depend on the thread count");
            Ok(())
        },
    );
}

#[test]
fn second_revalidate_is_a_noop() {
    let gens = (any::<u64>(), vec((any::<u8>(), any::<u8>()), 4..8));
    check(
        "second_revalidate_is_a_noop",
        &cfg(),
        &gens,
        |(edge_bits, probs)| {
            let base = load_str(&db_text(*edge_bits, probs)).unwrap();
            let mut vdb = VersionedDb::new(base);
            let q = parse("R1(x,y), R2(y,z), R3(z,x)").unwrap();
            let mut plan =
                RoutedPlan::compile_at(&q, vdb.current(), Method::Fpras, vdb.epochs()).unwrap();

            let delta = Delta::parse_str("~ 1/3 R1(c0,c1)").unwrap();
            vdb.apply(&delta).unwrap();
            let first = plan.revalidate(vdb.current(), vdb.epochs()).unwrap();
            prop_assert_eq!(first, Revalidation::Refreshed { incremental: true });
            let second = plan.revalidate(vdb.current(), vdb.epochs()).unwrap();
            prop_assert_eq!(second, Revalidation::Current);
            Ok(())
        },
    );
}
