//! The Table 1 classifier must agree with what the algorithms actually do:
//! lifted inference succeeds exactly on queries classified safe; the FPRAS
//! accepts exactly the self-join-free ones.

use pqe::arith::Rational;
use pqe::automata::FprasConfig;
use pqe::core::baselines::lifted_pqe;
use pqe::core::landscape::{classify, Verdict};
use pqe::core::pqe_estimate;
use pqe::db::{generators, ProbDatabase};
use pqe::query::{parse, shapes, ConjunctiveQuery};
use pqe_rand::rngs::StdRng;
use pqe_rand::SeedableRng;

fn sample_h(q: &ConjunctiveQuery, seed: u64) -> ProbDatabase {
    let mut rng = StdRng::seed_from_u64(seed);
    let rels: Vec<(String, usize)> = q
        .atoms()
        .iter()
        .map(|a| (a.relation.clone(), a.terms.len()))
        .collect();
    let rel_refs: Vec<(&str, usize)> = rels.iter().map(|(n, a)| (n.as_str(), *a)).collect();
    let db = generators::random_instance(&rel_refs, 3, 3, &mut rng);
    generators::with_uniform_probs(db, Rational::from_ratio(1, 2))
}

#[test]
fn lifted_succeeds_iff_classified_safe() {
    let queries: Vec<ConjunctiveQuery> = vec![
        shapes::star_query(3),
        shapes::path_query(2),
        shapes::path_query(3),
        shapes::path_query(5),
        shapes::h0_query(),
        shapes::cycle_query(3),
        parse("A(x), B(x,y)").unwrap(),
        parse("A(x), B(x,y), C(x,y,z)").unwrap(),
        parse("A(x,y), B(u,v)").unwrap(),
    ];
    for (i, q) in queries.iter().enumerate() {
        let c = classify(q);
        let h = sample_h(q, 3000 + i as u64);
        let lifted_ok = lifted_pqe(q, &h).is_ok();
        assert_eq!(
            lifted_ok, c.safe,
            "query {q}: classifier safe={} but lifted_ok={}",
            c.safe, lifted_ok
        );
    }
}

#[test]
fn fpras_accepts_iff_self_join_free() {
    let cfg = FprasConfig::with_epsilon(0.3).with_seed(1);
    let sjf = shapes::path_query(3);
    let h = sample_h(&sjf, 42);
    assert!(pqe_estimate(&sjf, &h, &cfg).is_ok());

    let with_sj = shapes::self_join_path(3);
    let h = sample_h(&with_sj, 43);
    assert!(pqe_estimate(&with_sj, &h, &cfg).is_err());
}

#[test]
fn verdicts_cover_all_table1_rows() {
    assert_eq!(classify(&shapes::star_query(2)).verdict, Verdict::ExactAndFpras);
    assert_eq!(classify(&shapes::path_query(4)).verdict, Verdict::FprasOnly);
    assert_eq!(classify(&shapes::self_join_path(2)).verdict, Verdict::Open);
    assert_eq!(classify(&shapes::clique_query(8)).verdict, Verdict::Open);
}

#[test]
fn safe_queries_get_matching_exact_and_fpras_answers() {
    let q = shapes::star_query(2);
    let h = sample_h(&q, 99);
    let exact = lifted_pqe(&q, &h).unwrap();
    let cfg = FprasConfig::with_epsilon(0.15).with_seed(5);
    let est = pqe_estimate(&q, &h, &cfg).unwrap().probability;
    if exact.is_zero() {
        assert!(est.is_zero());
    } else {
        let rel = (est.to_f64() / exact.to_f64() - 1.0).abs();
        assert!(rel <= 0.15, "exact {exact}, est {est}");
    }
}
