//! Determinism: with a fixed seed, the estimators must be pure functions
//! of their inputs — two runs produce bit-identical outputs. This is the
//! contract that makes `FprasConfig::with_seed` + the in-tree `pqe-rand`
//! PRNG a reproducibility story rather than a convenience.

use pqe::automata::FprasConfig;
use pqe::core::{path_ur_estimate, pqe_estimate, ur_estimate};
use pqe::db::generators;
use pqe::query::shapes;
use pqe_rand::rngs::StdRng;
use pqe_rand::SeedableRng;

fn fixture() -> (pqe::query::ConjunctiveQuery, pqe::db::ProbDatabase) {
    let mut rng = StdRng::seed_from_u64(0xDE7E_4141);
    let db = generators::layered_graph_connected(3, 3, 0.7, &mut rng);
    let h = generators::with_random_probs(db, 6, &mut rng);
    (shapes::path_query(3), h)
}

#[test]
fn instance_generation_is_deterministic() {
    let (q1, h1) = fixture();
    let (q2, h2) = fixture();
    assert_eq!(q1.to_string(), q2.to_string());
    assert_eq!(h1.len(), h2.len());
    for i in 0..h1.len() {
        let f = pqe::db::FactId(i as u32);
        assert_eq!(h1.prob(f), h2.prob(f), "prob of fact {i} differs");
    }
}

#[test]
fn pqe_estimate_is_bit_identical_across_runs() {
    let (q, h) = fixture();
    let cfg = FprasConfig::with_epsilon(0.3).with_seed(0x5EED);
    let a = pqe_estimate(&q, &h, &cfg).unwrap();
    let b = pqe_estimate(&q, &h, &cfg).unwrap();
    assert_eq!(a.probability.to_string(), b.probability.to_string());
    assert_eq!(a.target_size, b.target_size);
    assert_eq!(a.denominator, b.denominator);
    assert_eq!(a.automaton_states, b.automaton_states);
    assert_eq!(a.automaton_size, b.automaton_size);
}

#[test]
fn ur_estimate_is_bit_identical_across_runs() {
    let (q, h) = fixture();
    let db = h.database().clone();
    let cfg = FprasConfig::with_epsilon(0.3).with_seed(0xBEEF);
    let a = ur_estimate(&q, &db, &cfg).unwrap();
    let b = ur_estimate(&q, &db, &cfg).unwrap();
    assert_eq!(a.reliability.to_string(), b.reliability.to_string());
    assert_eq!(a.target_size, b.target_size);
    assert_eq!(a.dropped_facts, b.dropped_facts);
}

#[test]
fn path_ur_estimate_is_bit_identical_across_runs() {
    let (q, h) = fixture();
    let db = h.database().clone();
    let cfg = FprasConfig::with_epsilon(0.3).with_seed(0xF00D);
    let a = path_ur_estimate(&q, &db, &cfg).unwrap();
    let b = path_ur_estimate(&q, &db, &cfg).unwrap();
    assert_eq!(a.reliability.to_string(), b.reliability.to_string());
    assert_eq!(a.target_len, b.target_len);
}

#[test]
fn pqe_estimate_is_bit_identical_across_thread_counts() {
    // The tentpole invariant of the parallel FPRAS: thread count changes
    // wall-clock only, never the estimate (NFTA route).
    let (q, h) = fixture();
    let base = FprasConfig::with_epsilon(0.3).with_seed(0x5EED);
    let reference = pqe_estimate(&q, &h, &base.clone().with_threads(1)).unwrap();
    for threads in [2usize, 4, 8] {
        let r = pqe_estimate(&q, &h, &base.clone().with_threads(threads)).unwrap();
        assert_eq!(
            r.probability.to_string(),
            reference.probability.to_string(),
            "threads={threads}"
        );
        assert_eq!(r.threads, threads);
    }
    // Auto (threads = 0) resolves to whatever the host offers — same value.
    let auto = pqe_estimate(&q, &h, &base).unwrap();
    assert_eq!(
        auto.probability.to_string(),
        reference.probability.to_string()
    );
    assert!(auto.threads >= 1);
}

#[test]
fn path_ur_estimate_is_bit_identical_across_thread_counts() {
    // Same invariant along the NFA route.
    let (q, h) = fixture();
    let db = h.database().clone();
    let base = FprasConfig::with_epsilon(0.3).with_seed(0xF00D);
    let reference = path_ur_estimate(&q, &db, &base.clone().with_threads(1)).unwrap();
    for threads in [2usize, 4, 8] {
        let r = path_ur_estimate(&q, &db, &base.clone().with_threads(threads)).unwrap();
        assert_eq!(
            r.reliability.to_string(),
            reference.reliability.to_string(),
            "threads={threads}"
        );
    }
}

#[test]
fn env_thread_override_reproduces_single_threaded_values() {
    // `PQE_THREADS=1` (the env knob behind `threads = 0`) must reproduce
    // the explicit single-threaded run bit for bit.
    let (q, h) = fixture();
    let base = FprasConfig::with_epsilon(0.3).with_seed(0x5EED);
    let reference = pqe_estimate(&q, &h, &base.clone().with_threads(1)).unwrap();
    std::env::set_var("PQE_THREADS", "1");
    let through_env = pqe_estimate(&q, &h, &base).unwrap();
    let resolved = through_env.threads;
    std::env::remove_var("PQE_THREADS");
    assert_eq!(
        through_env.probability.to_string(),
        reference.probability.to_string()
    );
    assert_eq!(resolved, 1);
}

#[test]
fn single_threaded_values_are_pinned() {
    // Golden digits at threads = 1. Any change here means the sampling
    // schedule changed — a deliberate, documented break in reproducibility,
    // not an accident. (The same digits come out at any thread count; see
    // the cross-thread tests above.)
    let (q, h) = fixture();
    let cfg = FprasConfig::with_epsilon(0.3).with_seed(0x5EED).with_threads(1);
    let pqe = pqe_estimate(&q, &h, &cfg).unwrap();
    assert_eq!(pqe.probability.to_string(), "8.589671e-1");
    let db = h.database().clone();
    let cfg = FprasConfig::with_epsilon(0.3).with_seed(0xBEEF).with_threads(1);
    let ur = ur_estimate(&q, &db, &cfg).unwrap();
    assert_eq!(ur.reliability.to_string(), "8.829016e5");
}

#[test]
fn profiling_is_invisible_to_the_estimate() {
    // Observability must be deterministic-by-construction: spans, counters
    // and event logging never touch the RNG streams, so the golden digits
    // come out unchanged with profiling on — at one thread and at four.
    let (q, h) = fixture();
    pqe_obs::span::reset();
    pqe_obs::span::set_enabled(true);
    pqe_obs::log::set_filter(Some(pqe_obs::log::Level::Debug));
    let _root = pqe_obs::span::span("test_root");
    for threads in [1usize, 4] {
        let cfg = FprasConfig::with_epsilon(0.3)
            .with_seed(0x5EED)
            .with_threads(threads);
        let pqe = pqe_estimate(&q, &h, &cfg).unwrap();
        assert_eq!(
            pqe.probability.to_string(),
            "8.589671e-1",
            "threads={threads} with profiling on"
        );
        let db = h.database().clone();
        let cfg = FprasConfig::with_epsilon(0.3)
            .with_seed(0xBEEF)
            .with_threads(threads);
        let ur = ur_estimate(&q, &db, &cfg).unwrap();
        assert_eq!(
            ur.reliability.to_string(),
            "8.829016e5",
            "threads={threads} with profiling on"
        );
    }
    drop(_root);
    // The instrumented run actually recorded the phase tree.
    let snap = pqe_obs::span::snapshot();
    pqe_obs::span::set_enabled(false);
    pqe_obs::log::set_filter(None);
    let root = snap
        .iter()
        .find(|n| n.name == "test_root")
        .expect("root span recorded");
    assert!(
        root.children.iter().any(|c| c.name == "compile"),
        "compile phase recorded under the root"
    );
    assert!(
        root.children.iter().any(|c| c.name == "execute"),
        "execute phase recorded under the root"
    );
}

#[test]
fn golden_digits_survive_profiling_and_debug_logging_at_every_thread_count() {
    // The inner-loop rework (arena scratch reuse, fixed-width arithmetic,
    // batched RNG blocks) must be invisible under every observability and
    // scheduling combination at once: profiling spans on, the `PQE_LOG`
    // filter at debug, and 1/2/4/8 workers — the golden digits of
    // `single_threaded_values_are_pinned` come out unchanged everywhere.
    let (q, h) = fixture();
    let db = h.database().clone();
    std::env::set_var(pqe_obs::log::LOG_ENV, "debug");
    pqe_obs::span::reset();
    pqe_obs::span::set_enabled(true);
    pqe_obs::log::set_filter(Some(pqe_obs::log::Level::Debug));
    for threads in [1usize, 2, 4, 8] {
        let cfg = FprasConfig::with_epsilon(0.3)
            .with_seed(0x5EED)
            .with_threads(threads);
        let pqe = pqe_estimate(&q, &h, &cfg).unwrap();
        assert_eq!(
            pqe.probability.to_string(),
            "8.589671e-1",
            "pqe golden digits, threads={threads}, profile+debug log"
        );
        let cfg = FprasConfig::with_epsilon(0.3)
            .with_seed(0xBEEF)
            .with_threads(threads);
        let ur = ur_estimate(&q, &db, &cfg).unwrap();
        assert_eq!(
            ur.reliability.to_string(),
            "8.829016e5",
            "ur golden digits, threads={threads}, profile+debug log"
        );
    }
    pqe_obs::span::set_enabled(false);
    pqe_obs::log::set_filter(None);
    std::env::remove_var(pqe_obs::log::LOG_ENV);
}

#[test]
fn different_seeds_are_actually_different_streams() {
    // Guard against a seed that is accepted but ignored.
    let (q, h) = fixture();
    let a = pqe_estimate(&q, &h, &FprasConfig::with_epsilon(0.3).with_seed(1)).unwrap();
    let b = pqe_estimate(&q, &h, &FprasConfig::with_epsilon(0.3).with_seed(2)).unwrap();
    // Estimates at different seeds agree to within the FPRAS tolerance but
    // are produced by different sample paths; identical digit strings for
    // every field would mean the seed is dead. Tolerate the (unlikely)
    // coincidence on the headline number only.
    assert!(
        a.probability.to_string() != b.probability.to_string()
            || a.elapsed != b.elapsed,
        "seeds 1 and 2 produced identical outputs"
    );
}
