//! Property-based cross-validation of the graph pipeline: on randomly
//! generated small probabilistic DAGs, the FPRAS route (RPQ → product NFA
//! → CountNFA) must track the exact world-enumeration oracle within the
//! requested ε, and a fixed seed must give bit-identical estimates at
//! 1/2/4/8 worker threads.

use pqe::arith::{BigFloat, Rational};
use pqe::automata::FprasConfig;
use pqe::core::{GraphAnswer, GraphMethod, GraphPlan};
use pqe::graph::{enumerate_probability, parse, ProbGraph};
use pqe_testkit::prelude::*;

fn cfg() -> Config {
    Config::cases(24).with_corpus("tests/corpus/graph_oracle.corpus")
}

/// A random layered DAG from a bitmask: `s → {a0,a1} → {b0,b1} → t`, with
/// up to 8 candidate edges (presence from `edge_bits`) and probabilities
/// drawn from small numerator/denominator pairs. Acyclic by construction
/// and ≤ 8 edges, so the 2^m oracle stays instant.
fn tiny_dag(edge_bits: u8, probs: &[(u8, u8)]) -> ProbGraph {
    let mut g = ProbGraph::new();
    for v in ["s", "a0", "a1", "b0", "b1", "t"] {
        g.add_vertex(v);
    }
    let candidates: [(&str, &str, &str); 8] = [
        ("s", "x", "a0"),
        ("s", "x", "a1"),
        ("a0", "y", "b0"),
        ("a0", "y", "b1"),
        ("a1", "y", "b0"),
        ("a1", "y", "b1"),
        ("b0", "z", "t"),
        ("b1", "z", "t"),
    ];
    for (i, (src, label, dst)) in candidates.iter().enumerate() {
        if (edge_bits >> i) & 1 == 1 {
            let (w, d) = probs[i % probs.len()];
            let d = (d % 7).max(1) as u64 + 1; // 2..=8
            let w = (w as i64 % d as i64).max(1); // 1..=d-1 (strictly inside)
            g.add_edge(src, label, dst, Rational::from_ratio(w, d));
        }
    }
    g
}

const QUERIES: [&str; 3] = [
    "s -> x y z -> t",
    "s -> x (y | z)* z -> t",
    "_ -> x y -> _",
];

#[test]
fn fpras_tracks_the_enumeration_oracle_on_random_dags() {
    let gens = (any::<u8>(), vec((any::<u8>(), any::<u8>()), 4..8), 0usize..3, any::<u64>());
    check(
        "fpras_tracks_the_enumeration_oracle_on_random_dags",
        &cfg(),
        &gens,
        |(edge_bits, probs, qi, seed)| {
            let g = tiny_dag(*edge_bits, probs);
            prop_assume!(g.num_edges() >= 1);
            let rpq = parse(QUERIES[*qi]).unwrap();
            let exact = enumerate_probability(&g, &rpq).unwrap();

            let plan = GraphPlan::compile(&g, &rpq, GraphMethod::Fpras).unwrap();
            let epsilon = 0.2;
            // CountNFA is an (ε, δ) estimator: any single seed may miss.
            // Three independent seeds with a 2-of-3 majority keeps the
            // property sound without weakening the per-run tolerance.
            let exact_f = BigFloat::from_rational(&exact);
            let hits = (0..3u64)
                .filter(|t| {
                    let cfg = FprasConfig::with_epsilon(epsilon).with_seed(seed ^ (t * 0x9E37));
                    let est = plan.execute(&cfg).to_bigfloat();
                    if exact.is_zero() {
                        est.to_f64() == 0.0
                    } else {
                        est.relative_error_to(&exact_f) <= epsilon
                    }
                })
                .count();
            prop_assert!(
                hits >= 2,
                "{hits}/3 seeds within ε = {epsilon} of oracle {exact} on {} edges",
                g.num_edges()
            );
            Ok(())
        },
    );
}

#[test]
fn graph_estimates_are_bit_identical_across_thread_counts() {
    let gens = (any::<u8>(), vec((any::<u8>(), any::<u8>()), 4..8), 0usize..3, any::<u64>());
    check(
        "graph_estimates_are_bit_identical_across_thread_counts",
        &cfg(),
        &gens,
        |(edge_bits, probs, qi, seed)| {
            let g = tiny_dag(*edge_bits, probs);
            prop_assume!(g.num_edges() >= 1);
            let rpq = parse(QUERIES[*qi]).unwrap();
            let plan = GraphPlan::compile(&g, &rpq, GraphMethod::Fpras).unwrap();

            let run = |threads: usize| {
                let cfg = FprasConfig::with_epsilon(0.3).with_seed(*seed).with_threads(threads);
                match plan.execute(&cfg) {
                    GraphAnswer::Estimate { probability, .. } => probability,
                    GraphAnswer::Exact(_) => unreachable!("forced fpras route"),
                }
            };
            let baseline = run(1);
            for threads in [2usize, 4, 8] {
                let est = run(threads);
                prop_assert!(
                    est == baseline,
                    "estimate at {threads} threads diverged from the 1-thread run"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn auto_route_answers_match_between_enum_and_forced_fpras_on_certain_graphs() {
    // Probability-1 edges: the FPRAS has nothing to estimate (every world
    // is the same), so both routes must answer exactly alike.
    let mut g = ProbGraph::new();
    for v in ["s", "m", "t"] {
        g.add_vertex(v);
    }
    let one = Rational::from_ratio(1, 1);
    g.add_edge("s", "r", "m", one.clone());
    g.add_edge("m", "r", "t", one);
    let rpq = parse("s -> r r -> t").unwrap();

    let auto = GraphPlan::compile(&g, &rpq, GraphMethod::Auto).unwrap();
    let cfg = FprasConfig::with_epsilon(0.1).with_seed(3);
    let GraphAnswer::Exact(exact) = auto.execute(&cfg) else {
        panic!("2-edge graph must auto-route to enumeration");
    };
    assert_eq!(exact.to_string(), "1");

    let fpras = GraphPlan::compile(&g, &rpq, GraphMethod::Fpras).unwrap();
    let est = fpras.execute(&cfg).to_f64();
    assert_eq!(est, 1.0, "certain path must estimate to exactly 1");
}
