//! End-to-end tests of the `pqe` command-line binary.

use std::io::Write;
use std::process::Command;

fn pqe() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pqe"))
}

fn write_db(content: &str) -> tempfile_path::TempPath {
    tempfile_path::write(content)
}

/// Minimal temp-file helper (no external crate).
mod tempfile_path {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    pub struct TempPath(pub PathBuf);

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    pub fn write(content: &str) -> TempPath {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "pqe-cli-test-{}-{n}.pdb",
            std::process::id()
        ));
        std::fs::write(&path, content).unwrap();
        TempPath(path)
    }
}

const TWO_PATH_DB: &str = "1/2 R(a,b)\n1/3 S(b,c)\n1/5 S(b,d)\n";

#[test]
fn estimate_brute_matches_hand_computation() {
    let db = write_db(TWO_PATH_DB);
    let out = pqe()
        .args(["estimate", "--db"])
        .arg(&db.0)
        .args(["--query", "R(x,y), S(y,z)", "--method", "brute"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Pr = 1/2 · (1 − 2/3·4/5) = 1/2 · 7/15 = 7/30.
    assert!(stdout.contains("7/30"), "stdout: {stdout}");
}

#[test]
fn estimate_fpras_close_to_exact() {
    let db = write_db(TWO_PATH_DB);
    let out = pqe()
        .args(["estimate", "--db"])
        .arg(&db.0)
        .args(["--query", "R(x,y), S(y,z)", "--method", "fpras", "--epsilon", "0.1"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let value: f64 = stdout
        .split('≈')
        .nth(1)
        .unwrap()
        .split_whitespace()
        .next()
        .unwrap()
        .parse()
        .unwrap();
    let exact = 7.0 / 30.0;
    assert!((value / exact - 1.0).abs() <= 0.1, "value {value}");
}

#[test]
fn auto_routes_safe_queries_to_lifted() {
    let db = write_db(TWO_PATH_DB);
    let out = pqe()
        .args(["estimate", "--db"])
        .arg(&db.0)
        .args(["--query", "R(x,y), S(y,z)"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("lifted"));
}

#[test]
fn route_line_reports_the_dispatch_decision() {
    let db = write_db(TWO_PATH_DB);
    // Auto on a safe query: routed to lifted, with the rationale printed.
    let out = pqe()
        .args(["estimate", "--db"])
        .arg(&db.0)
        .args(["--query", "R(x,y), S(y,z)"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("route    : lifted [auto: safe"), "{stdout}");

    // Forcing FPRAS overrides the auto decision and says so.
    let out = pqe()
        .args(["estimate", "--db"])
        .arg(&db.0)
        .args(["--query", "R(x,y), S(y,z)", "--method", "fpras"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("route    : fpras [forced by --method fpras]"), "{stdout}");
}

#[test]
fn evidence_conditions_the_estimate() {
    let db = write_db(TWO_PATH_DB);
    // Ground evidence S(b,c): P(Q | E) = Pr_{H[S(b,c):=1]}(Q) = 1/2,
    // P(E) = 1/3, both exact.
    let out = pqe()
        .args(["estimate", "--db"])
        .arg(&db.0)
        .args(["--query", "R(x,y), S(y,z)", "--evidence", "S('b','c')"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Pr(Q|E) = 1/2"), "{stdout}");
    assert!(stdout.contains("P(E) = 0.333333"), "{stdout}");
    assert!(stdout.contains("route(E) : exact product (ground evidence)"), "{stdout}");
}

#[test]
fn impossible_evidence_is_a_structured_error() {
    let db = write_db(TWO_PATH_DB);
    let out = pqe()
        .args(["estimate", "--db"])
        .arg(&db.0)
        .args(["--query", "R(x,y), S(y,z)", "--evidence", "S('nope','nope')"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("P(E) = 0"), "stderr: {stderr}");
    assert!(stderr.contains("conditional probability undefined"), "stderr: {stderr}");
}

#[test]
fn evidence_requires_a_routed_method() {
    let db = write_db(TWO_PATH_DB);
    let out = pqe()
        .args(["estimate", "--db"])
        .arg(&db.0)
        .args(["--query", "R(x,y), S(y,z)", "--evidence", "S('b','c')", "--method", "brute"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--evidence requires a routed method"), "stderr: {stderr}");
}

#[test]
fn classify_reports_landscape_cell() {
    let out = pqe()
        .args(["classify", "--query", "R1(x,y), R2(y,z), R3(z,w)"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("safe=false"), "{stdout}");
    assert!(stdout.contains("FprasOnly"), "{stdout}");
}

#[test]
fn reliability_counts_subinstances() {
    let db = write_db("R(a,b)\nS(b,c)\nS(b,d)\n");
    let out = pqe()
        .args(["reliability", "--db"])
        .arg(&db.0)
        .args(["--query", "R(x,y), S(y,z)", "--epsilon", "0.1"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2^3"), "{stdout}");
}

#[test]
fn sample_prints_satisfying_worlds() {
    let db = write_db(TWO_PATH_DB);
    let out = pqe()
        .args(["sample", "--db"])
        .arg(&db.0)
        .args(["--query", "R(x,y), S(y,z)", "--count", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Every sampled world must contain R(a,b) (the only R fact).
    for line in stdout.lines() {
        assert!(line.contains("R(a,b)"), "world without witness: {line}");
    }
}

#[test]
fn lineage_counts_and_materializes() {
    let db = write_db(TWO_PATH_DB);
    let out = pqe()
        .args(["lineage", "--db"])
        .arg(&db.0)
        .args(["--query", "R(x,y), S(y,z)", "--materialize", "10"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("lineage clauses: 2"), "{stdout}");
    assert!(stdout.contains("R(a,b) ∧ S(b,c)"), "{stdout}");
}

#[test]
fn errors_use_exit_code_2_and_name_the_problem() {
    // Unknown command.
    let out = pqe().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing --db.
    let out = pqe().args(["estimate", "--query", "R(x)"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--db"));

    // Bad epsilon.
    let db = write_db(TWO_PATH_DB);
    let out = pqe()
        .args(["estimate", "--db"])
        .arg(&db.0)
        .args(["--query", "R(x,y)", "--epsilon", "2.0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("(0,1)"));

    // NaN epsilon: every comparison against NaN is false, so the bound
    // check must be written as !(0 < ε < 1) to catch it.
    let out = pqe()
        .args(["estimate", "--db"])
        .arg(&db.0)
        .args(["--query", "R(x,y)", "--epsilon", "NaN"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("NaN"));

    // Unknown method: rejected with a "did you mean" hint, never silently
    // routed as auto.
    let out = pqe()
        .args(["estimate", "--db"])
        .arg(&db.0)
        .args(["--query", "R(x,y)", "--method", "fprs"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("did you mean \"fpras\"?"), "stderr: {stderr}");

    // Malformed database.
    let bad = write_db("this is not a fact\n");
    let out = pqe()
        .args(["estimate", "--db"])
        .arg(&bad.0)
        .args(["--query", "R(x)"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 1"));

    // Self-join via fpras.
    let db2 = write_db("R(a,b)\nR(b,c)\n");
    let out = pqe()
        .args(["estimate", "--db"])
        .arg(&db2.0)
        .args(["--query", "R(x,y), R(y,z)", "--method", "fpras"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("self-join"));
}

#[test]
fn profile_prints_phase_tree() {
    let db = write_db(TWO_PATH_DB);
    let out = pqe()
        .args(["estimate", "--db"])
        .arg(&db.0)
        .args(["--query", "R(x,y), S(y,z)", "--method", "fpras", "--profile"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The estimate itself still prints first…
    assert!(stdout.contains("Pr(Q) ≈"), "{stdout}");
    // …followed by the span tree with the compile/execute split and the
    // FPRAS sample counters.
    assert!(stdout.contains("profile: phase totals"), "{stdout}");
    for phase in ["estimate", "compile", "execute", "count.nfta", "100.0%"] {
        assert!(stdout.contains(phase), "missing {phase:?} in: {stdout}");
    }
    assert!(stdout.contains("fpras.samples"), "{stdout}");
}

#[test]
fn profile_does_not_change_the_estimate() {
    let db = write_db(TWO_PATH_DB);
    let run = |profile: bool| {
        let mut cmd = pqe();
        cmd.args(["estimate", "--db"])
            .arg(&db.0)
            .args(["--query", "R(x,y), S(y,z)", "--method", "fpras", "--seed", "7"]);
        if profile {
            cmd.arg("--profile");
        }
        let out = cmd.output().unwrap();
        assert!(out.status.success());
        // First line is `Pr(Q) ≈ VALUE   [FPRAS, …, Nms]`; the wall-clock
        // tail varies run to run, so compare the value token only.
        String::from_utf8_lossy(&out.stdout)
            .split('≈')
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .to_owned()
    };
    assert_eq!(run(false), run(true), "profiling perturbed the estimate");
}

#[test]
fn bad_threads_values_are_rejected_with_clear_messages() {
    let db = write_db(TWO_PATH_DB);
    let run = |threads: &str| {
        let out = pqe()
            .args(["estimate", "--db"])
            .arg(&db.0)
            .args(["--query", "R(x,y), S(y,z)", "--threads", threads])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "--threads {threads}");
        String::from_utf8_lossy(&out.stderr).into_owned()
    };
    assert!(run("-3").contains("non-negative"));
    assert!(run("99999999999999999999").contains("overflows"));
    assert!(run("9000").contains("implausibly large"));
    assert!(run("abc").contains("non-negative integer"));
    // And each message spells out the 0 = auto sentinel.
    for bad in ["-3", "abc"] {
        assert!(run(bad).contains("0 for auto") || run(bad).contains("0 = auto"));
    }
    // --threads 0 itself is the documented auto sentinel, not an error.
    let out = pqe()
        .args(["estimate", "--db"])
        .arg(&db.0)
        .args(["--query", "R(x,y), S(y,z)", "--threads", "0"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn help_documents_threads_sentinel_and_profile() {
    let out = pqe().arg("help").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("--threads 0"), "{stdout}");
    assert!(stdout.contains("PQE_THREADS"), "{stdout}");
    assert!(stdout.contains("--profile"), "{stdout}");
    assert!(stdout.contains("PQE_LOG"), "{stdout}");
}

#[test]
fn help_prints_usage() {
    let out = pqe().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn stdin_is_not_consumed() {
    // The CLI must be usable in pipelines without hanging on stdin.
    let mut child = pqe()
        .args(["classify", "--query", "R(x,y)"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    // BrokenPipe means the child exited without reading stdin — exactly
    // the behavior under test — so it is not a failure.
    match child.stdin.take().unwrap().write_all(b"ignored") {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => {}
        Err(e) => panic!("unexpected stdin write error: {e}"),
    }
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
}

#[test]
fn marginals_rank_the_witness_facts() {
    let db = write_db(TWO_PATH_DB);
    let out = pqe()
        .args(["marginals", "--db"])
        .arg(&db.0)
        .args(["--query", "R(x,y), S(y,z)", "--samples", "500"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // R(a,b) is in every witness: conditional marginal 1.0, ranked first.
    let first = stdout.lines().nth(1).unwrap();
    assert!(first.contains("1.0000") && first.contains("R(a,b)"), "{stdout}");
}

#[test]
fn influence_is_largest_for_the_bottleneck_fact() {
    let db = write_db(TWO_PATH_DB);
    let out = pqe()
        .args(["influence", "--db"])
        .arg(&db.0)
        .args(["--query", "R(x,y), S(y,z)", "--epsilon", "0.1"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The single R fact gates the whole query: top influence row.
    let first = stdout.lines().nth(1).unwrap();
    assert!(first.contains("R(a,b)"), "{stdout}");
}
