#![warn(missing_docs)]

//! # pqe — Probabilistic Query Evaluation: the combined FPRAS, as a library
//!
//! Umbrella crate re-exporting the full public API of the workspace. See the
//! README for an architecture overview and `DESIGN.md` for the paper-to-code
//! map.

pub use pqe_arith as arith;
pub use pqe_automata as automata;
pub use pqe_core as core;
pub use pqe_db as db;
pub use pqe_delta as delta;
pub use pqe_engine as engine;
pub use pqe_graph as graph;
pub use pqe_hypertree as hypertree;
pub use pqe_obs as obs;
pub use pqe_query as query;
pub use pqe_rand as rand;
pub use pqe_serve as serve;
