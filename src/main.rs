//! `pqe` — command-line probabilistic query evaluation.
//!
//! ```text
//! pqe estimate    --db FILE --query 'R(x,y), S(y,z)' [--epsilon ε] [--seed N] [--method M]
//! pqe graph-estimate --graph FILE --rpq 'a -> road* -> b' [--epsilon ε] [--seed N] [--method M]
//! pqe reliability --db FILE --query Q [--epsilon ε] [--seed N]
//! pqe classify    --query Q
//! pqe sample      --db FILE --query Q [--count N] [--seed N]
//! pqe lineage     --db FILE --query Q [--materialize LIMIT]
//! ```
//!
//! Databases use the text format of `pqe_db::io` (one `prob Fact(args…)`
//! per line). Methods: `auto` (lifted when safe, else FPRAS), `fpras`,
//! `lifted`, `brute`, `karp-luby`, `mc`.

use pqe::automata::FprasConfig;
use pqe::core::baselines::{brute_force_pqe, karp_luby_pqe, naive_monte_carlo_pqe, Lineage};
use pqe::core::worlds::WeightedWorldSampler;
use pqe::core::{
    landscape, ur_estimate, ConditionalPlan, GraphAnswer, GraphMethod, GraphPlan, Method,
    RoutedAnswer, RoutedPlan,
};
use pqe::db::{io as dbio, ProbDatabase};
use pqe::delta::{Delta, VersionedDb};
use pqe::graph::ProbGraph;
use pqe::query::{parse, ConjunctiveQuery};
use pqe::serve::{run_load, LoadConfig, ServeConfig, Server};
use pqe_rand::rngs::StdRng;
use pqe_rand::SeedableRng;
use pqe_testkit::bench::Runner;
use std::process::ExitCode;

const USAGE: &str = "\
pqe — probabilistic query evaluation (van Bremen & Meel, PODS 2023)

USAGE:
  pqe estimate    --db FILE --query Q [--evidence E] [--epsilon E] [--seed N] [--method M]
                  [--threads N] [--profile] [--dump-automaton FILE]
  pqe reliability --db FILE --query Q [--epsilon E] [--seed N] [--threads N] [--profile]
  pqe graph-estimate --graph FILE --rpq 'a -> r* -> b' [--epsilon E] [--seed N]
                  [--method auto|enum|fpras] [--threads N] [--profile]
                  [--dump-automaton FILE]
  pqe classify    --query Q
  pqe sample      --db FILE --query Q [--count N] [--seed N]
  pqe marginals   --db FILE --query Q [--samples N] [--seed N]
  pqe influence   --db FILE --query Q [--epsilon E] [--seed N]
  pqe lineage     --db FILE --query Q [--materialize LIMIT]
  pqe apply-delta --db FILE --delta FILE [--output FILE]
  pqe serve       --db FILE [--graph FILE] [--addr HOST:PORT] [--workers N]
                  [--queue-depth N] [--deadline-ms N] [--cache-capacity N]
                  [--threads N]
  pqe bench-serve [--db FILE] [--query Q] [--connections N] [--requests N]
                  [--repeat-ratio R] [--epsilon E] [--seed N] [--method M]
                  [--workers N] [--update-mix R] [--update-delta TEXT]

SERVE CONCURRENCY:
  --workers N      worker shards draining the request queue; each owns a
                   private compiled-plan cache (default 4)
  --queue-depth N  bounded work-queue capacity; heavy requests arriving at
                   a full queue get a structured `overloaded` error
                   (default 64; --max-inflight is a legacy alias)
  bench-serve sweeps 1/4/16/64 connections by default; --connections pins
  a single point, --requests is the total budget per point.

THREADS:
  --threads N sets the FPRAS worker count for the command (and the server
  default for requests that don't carry their own). N must be a
  non-negative integer; N = 0 is the auto sentinel — defer to the
  PQE_THREADS environment variable, then to the detected core count. So
  the precedence is flag > env > auto, and `--threads 0` is an explicit
  auto. The thread count never changes an estimate — only its wall-clock.

PROFILING:
  --profile records hierarchical phase spans (compile → ur_automaton /
  translate / multipliers; execute → count.nfta → rep → union_mc) and
  prints the span tree with per-phase totals and percentages after the
  result, plus the fpras.* sample counters. Profiling never touches the
  RNG streams: estimates are bit-identical with it on or off. Set
  PQE_LOG=debug|info|... for optional event logging to stderr (also
  perturbation-free).

METHODS (estimate):
  auto       routed: lifted inference when the query is safe, FPRAS otherwise [default]
  fpras      the paper's PQEEstimate (Theorem 1)
  lifted     exact safe-plan evaluation (hierarchical queries only)
  brute      exact enumeration of all 2^|D| worlds (tiny databases)
  karp-luby  lineage-free Karp-Luby estimator (20k samples)
  mc         naive Monte Carlo (100k worlds, additive error)
  auto/lifted/fpras dispatch through the core router; the chosen route and
  its rationale are printed with the result.

EVIDENCE (estimate):
  --evidence takes a conjunction in query syntax and evaluates the
  conditional probability P(Q | E). All-constant evidence (e.g.
  S('b','c')) conditions the database directly and keeps P(E) exact;
  evidence with variables evaluates P(Q∧E)/P(E) with each term routed
  independently and ε split across the estimated terms (ε/2 with one
  FPRAS term, ε/3 with two). P(E) = 0 is a structured error. Only the
  routed methods (auto, lifted, fpras) support --evidence.

PROBABILISTIC GRAPHS (graph-estimate):
  --graph loads an edge-labeled probabilistic graph (one edge per line,
  optional leading probability), --rpq gives a regular path query
  `source -> regex -> target` where an endpoint is a vertex name or `_`
  (existential) and the regex uses labels, `.` (or juxtaposition), `|`,
  `*`, `?`, and parentheses. Methods: auto (exact world enumeration up
  to 16 edges, FPRAS on larger acyclic graphs), enum, fpras. Cyclic
  graphs beyond enumeration reach are a structured error — no combined
  FPRAS is known for them. `pqe serve --graph FILE` additionally exposes
  the instance via the `graph_estimate` wire op.

  --dump-automaton FILE writes the compiled automaton (the RPQ product
  NFA here; the query NFTA on `estimate`) as Graphviz DOT.

DATABASE FORMAT: one fact per line, optional leading probability:
  0.9  Link(a,b)
  3/4  Link(b,c)
       Link(c,d)        # no probability = certain

GRAPH FORMAT: one edge per line, optional leading probability:
  0.9  a -road-> b
  1/2  b -road-> c
       c -rail-> d      # no probability = certain edge
  node e                # isolated vertex

DELTA FORMAT (apply-delta, serve `update` op): one op per line:
  + 1/3 R1(a,e)         # insert fact with probability 1/3
  - R1(a,b)             # delete an existing fact
  ~ 2/5 R2(b,c)         # re-probability an existing fact
  A batch validates atomically: either every op applies or none do.
  apply-delta rewrites --db in place unless --output names another file;
  a probability-only batch (~ ops) leaves compiled plans structurally
  valid, so a live server only recounts, never recompiles. bench-serve's
  --update-mix R sends an `update` carrying --update-delta with
  probability R per request, exercising scoped cache invalidation.
";

struct Args {
    positional: Vec<String>,
    options: std::collections::HashMap<String, String>,
}

/// Options that are bare flags (present/absent, no value argument).
const FLAG_OPTIONS: &[&str] = &["profile"];

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut options = std::collections::HashMap::new();
    let mut it = argv.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if FLAG_OPTIONS.contains(&name) {
                if options.insert(name.to_owned(), "true".to_owned()).is_some() {
                    return Err(format!("option --{name} given twice"));
                }
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| format!("option --{name} requires a value"))?;
            if options.insert(name.to_owned(), value.clone()).is_some() {
                return Err(format!("option --{name} given twice"));
            }
        } else {
            positional.push(a.clone());
        }
    }
    Ok(Args {
        positional,
        options,
    })
}

impl Args {
    fn opt(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.opt(name)
            .ok_or_else(|| format!("missing required option --{name}"))
    }

    fn epsilon(&self) -> Result<f64, String> {
        match self.opt("epsilon") {
            None => Ok(0.1),
            Some(s) => {
                let e: f64 = s.parse().map_err(|_| format!("bad --epsilon {s:?}"))?;
                // NaN fails both `e <= 0.0` and `e >= 1.0`, so the check
                // must be written as a negated conjunction.
                if !(e > 0.0 && e < 1.0) {
                    return Err(format!("--epsilon must lie in (0,1), got {e}"));
                }
                Ok(e)
            }
        }
    }

    fn seed(&self) -> Result<u64, String> {
        match self.opt("seed") {
            None => Ok(0x5eed),
            Some(s) => s.parse().map_err(|_| format!("bad --seed {s:?}")),
        }
    }

    /// Worker threads; 0 (the default) defers to `PQE_THREADS`, then
    /// auto-detection — so the precedence is flag > env > auto.
    /// Negative, non-numeric and implausibly large values are rejected
    /// with a message that spells out the 0 sentinel.
    fn threads(&self) -> Result<usize, String> {
        const MAX_THREADS: usize = 4096;
        match self.opt("threads") {
            None => Ok(0),
            Some(s) => {
                let t = s.trim();
                if t.starts_with('-') {
                    return Err(format!(
                        "--threads must be non-negative, got {s:?} (use 0 for auto: PQE_THREADS, then detected cores)"
                    ));
                }
                let n: usize = t.parse().map_err(|_| {
                    if !t.is_empty() && t.chars().all(|c| c.is_ascii_digit()) {
                        format!("--threads {s:?} overflows the supported range (max {MAX_THREADS}, 0 = auto)")
                    } else {
                        format!("--threads expects a non-negative integer, got {s:?} (0 = auto: PQE_THREADS, then detected cores)")
                    }
                })?;
                if n > MAX_THREADS {
                    return Err(format!(
                        "--threads {n} is implausibly large (max {MAX_THREADS}; 0 = auto)"
                    ));
                }
                Ok(n)
            }
        }
    }

    /// `--profile`: record phase spans and print the tree after the run.
    fn profile(&self) -> bool {
        self.opt("profile").is_some()
    }

    fn check_known(&self, allowed: &[&str]) -> Result<(), String> {
        for k in self.options.keys() {
            if !allowed.contains(&k.as_str()) {
                let hint = allowed
                    .iter()
                    .map(|a| (edit_distance(k, a), a))
                    .filter(|(d, _)| *d <= 2)
                    .min()
                    .map(|(_, a)| format!(" (did you mean --{a}?)"))
                    .unwrap_or_else(|| " (see `pqe help`)".to_owned());
                return Err(format!("unknown option --{k}{hint}"));
            }
        }
        Ok(())
    }
}

/// Levenshtein distance, for "did you mean" hints on unknown options.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

fn load_db(args: &Args) -> Result<ProbDatabase, String> {
    let path = args.require("db")?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    dbio::load_str(&src).map_err(|e| format!("{path}: {e}"))
}

fn load_query(args: &Args) -> Result<ConjunctiveQuery, String> {
    let q = args.require("query")?;
    parse(q).map_err(|e| e.to_string())
}

fn load_graph(args: &Args) -> Result<ProbGraph, String> {
    let path = args.require("graph")?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    pqe::graph::load_str(&src).map_err(|e| format!("{path}: {e}"))
}

/// Writes a compiled automaton rendered as Graphviz DOT.
fn dump_automaton(path: &str, dot: String) -> Result<(), String> {
    std::fs::write(path, dot).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("automaton: wrote {path}");
    Ok(())
}

/// Every `--method` the estimate command accepts: the three routed
/// methods (dispatched through `pqe_core::router`) plus the CLI-only
/// reference baselines.
const ESTIMATE_METHODS: &[&str] = &["auto", "lifted", "fpras", "brute", "karp-luby", "mc"];

fn cmd_estimate(args: &Args) -> Result<(), String> {
    args.check_known(&[
        "db",
        "query",
        "evidence",
        "epsilon",
        "seed",
        "method",
        "threads",
        "profile",
        "dump-automaton",
    ])?;
    let _profile = ProfileGuard::start(args.profile(), "estimate");
    let h = load_db(args)?;
    let q = load_query(args)?;
    let eps = args.epsilon()?;
    let seed = args.seed()?;
    // Validate up front so a bad value errors on every method, not just
    // the FPRAS route.
    let threads = args.threads()?;
    let method = args.opt("method").unwrap_or("auto");
    let class = landscape::classify(&q);

    if !ESTIMATE_METHODS.contains(&method) {
        let hint = ESTIMATE_METHODS
            .iter()
            .map(|m| (edit_distance(method, m), *m))
            .filter(|(d, _)| *d <= 2)
            .min()
            .map(|(_, m)| format!("; did you mean {m:?}?"))
            .unwrap_or_default();
        return Err(format!(
            "unknown --method {method:?} (methods: {}{hint})",
            ESTIMATE_METHODS.join(", ")
        ));
    }

    // The routed methods go through the shared core router — the same
    // dispatch `pqe-serve` uses, so CLI and server cannot diverge.
    if let Ok(routed_method) = Method::parse(method) {
        let cfg = FprasConfig::with_epsilon(eps)
            .with_seed(seed)
            .with_threads(threads);
        if let Some(ev_text) = args.opt("evidence") {
            if args.opt("dump-automaton").is_some() {
                return Err(
                    "--dump-automaton is not supported with --evidence (two plans, no single automaton)"
                        .to_owned(),
                );
            }
            let e = parse(ev_text).map_err(|e| format!("--evidence: {e}"))?;
            let plan =
                ConditionalPlan::compile(&q, &e, &h, routed_method).map_err(|e| e.to_string())?;
            let r = plan.execute(&cfg).map_err(|e| e.to_string())?;
            match &r.exact {
                Some(p) => println!(
                    "Pr(Q|E) = {} ≈ {:.6}   [exact, P(E) = {:.6}]",
                    p,
                    p.to_f64(),
                    r.prob_evidence.to_f64()
                ),
                None => println!(
                    "Pr(Q|E) ≈ {:.6}   [ε = {eps}, per-term ε = {}, P(E) = {:.6}, {} states, {:.1?}]",
                    r.conditional.to_f64(),
                    r.split_epsilon.unwrap_or(eps),
                    r.prob_evidence.to_f64(),
                    r.automaton_states,
                    r.elapsed
                ),
            }
            let jd = plan.joint_decision();
            println!("route    : {} [{}]", jd.route.name(), jd.rationale);
            match plan.evidence_decision() {
                Some(ed) => println!("route(E) : {} [{}]", ed.route.name(), ed.rationale),
                None => println!("route(E) : exact product (ground evidence)"),
            }
        } else {
            let plan = RoutedPlan::compile(&q, &h, routed_method).map_err(|e| e.to_string())?;
            if let Some(path) = args.opt("dump-automaton") {
                match plan.nfta() {
                    Some(nfta) => dump_automaton(path, pqe::automata::nfta_to_dot(nfta))?,
                    None => eprintln!(
                        "automaton: none compiled ({} route)",
                        plan.decision.route.name()
                    ),
                }
            }
            match plan.execute(&cfg) {
                RoutedAnswer::Exact(p) => println!(
                    "Pr(Q) = {} ≈ {:.6}   [lifted inference, exact]",
                    p,
                    p.to_f64()
                ),
                RoutedAnswer::Estimate(r) => println!(
                    "Pr(Q) ≈ {:.6}   [FPRAS, ε = {eps}, {} states, {:.1?}]",
                    r.probability.to_f64(),
                    r.automaton_states,
                    r.elapsed
                ),
            }
            let d = &plan.decision;
            println!("route    : {} [{}]", d.route.name(), d.rationale);
        }
        eprintln!("landscape: {class}");
        return Ok(());
    }

    // Reference baselines (CLI-only) don't support conditioning.
    if args.opt("evidence").is_some() {
        return Err(format!(
            "--evidence requires a routed method (auto, lifted, or fpras), got --method {method:?}"
        ));
    }
    if args.opt("dump-automaton").is_some() {
        return Err(format!(
            "--dump-automaton requires a routed method (auto, lifted, or fpras), got --method {method:?}"
        ));
    }
    match method {
        "brute" => {
            if h.len() > pqe::db::worlds::MAX_ENUM_FACTS {
                return Err(format!(
                    "--method brute needs |D| ≤ {}, got {}",
                    pqe::db::worlds::MAX_ENUM_FACTS,
                    h.len()
                ));
            }
            let p = brute_force_pqe(&q, &h);
            println!("Pr(Q) = {} ≈ {:.6}   [brute force, exact]", p, p.to_f64());
        }
        "karp-luby" => {
            let r = karp_luby_pqe(&q, &h, 20_000, seed);
            println!(
                "Pr(Q) ≈ {:.6}   [Karp-Luby, {} samples, E[#true clauses] = {:.1}]",
                r.estimate.to_f64(),
                r.samples,
                r.mean_true_clauses
            );
        }
        "mc" => {
            let p = naive_monte_carlo_pqe(&q, &h, 100_000, seed);
            println!("Pr(Q) ≈ {p:.6}   [naive Monte Carlo, 100k worlds, additive error]");
        }
        _ => unreachable!("validated against ESTIMATE_METHODS above"),
    }
    eprintln!("landscape: {class}");
    Ok(())
}

fn cmd_graph_estimate(args: &Args) -> Result<(), String> {
    args.check_known(&[
        "graph",
        "rpq",
        "epsilon",
        "seed",
        "method",
        "threads",
        "profile",
        "dump-automaton",
    ])?;
    let _profile = ProfileGuard::start(args.profile(), "graph-estimate");
    let g = load_graph(args)?;
    let rpq_text = args.require("rpq")?;
    let eps = args.epsilon()?;
    let method = GraphMethod::parse(args.opt("method").unwrap_or("auto"))?;
    let cfg = FprasConfig::with_epsilon(eps)
        .with_seed(args.seed()?)
        .with_threads(args.threads()?);
    let plan = GraphPlan::compile_str(&g, rpq_text, method).map_err(|e| e.to_string())?;
    if let Some(path) = args.opt("dump-automaton") {
        match plan.nfa() {
            Some(nfa) => dump_automaton(path, pqe::automata::nfa_to_dot(nfa))?,
            None => eprintln!(
                "automaton: none compiled ({} route)",
                plan.decision.route.name()
            ),
        }
    }
    match plan.execute(&cfg) {
        GraphAnswer::Exact(p) => println!(
            "Pr({}) = {} ≈ {:.6}   [world enumeration, exact]",
            plan.rpq,
            p,
            p.to_f64()
        ),
        GraphAnswer::Estimate { probability, elapsed } => println!(
            "Pr({}) ≈ {:.6}   [FPRAS, ε = {eps}, {} states, {:.1?}]",
            plan.rpq,
            probability.to_f64(),
            plan.automaton_states(),
            elapsed
        ),
    }
    let d = &plan.decision;
    println!("route    : {} [{}]", d.route.name(), d.rationale);
    eprintln!(
        "graph    : {} vertices, {} edges, {}",
        g.num_vertices(),
        g.num_edges(),
        if g.is_acyclic() { "acyclic" } else { "cyclic" }
    );
    Ok(())
}

fn cmd_reliability(args: &Args) -> Result<(), String> {
    args.check_known(&["db", "query", "epsilon", "seed", "threads", "profile"])?;
    let _profile = ProfileGuard::start(args.profile(), "reliability");
    let h = load_db(args)?;
    let q = load_query(args)?;
    let cfg = FprasConfig::with_epsilon(args.epsilon()?)
        .with_seed(args.seed()?)
        .with_threads(args.threads()?);
    let r = ur_estimate(&q, h.database(), &cfg).map_err(|e| e.to_string())?;
    println!(
        "UR(Q, D) ≈ {}   of 2^{} subinstances   [UREstimate, {:.1?}]",
        r.reliability,
        h.len(),
        r.elapsed
    );
    Ok(())
}

fn cmd_classify(args: &Args) -> Result<(), String> {
    args.check_known(&["query"])?;
    let q = load_query(args)?;
    let c = landscape::classify(&q);
    println!("query    : {q}");
    println!("landscape: {c}");
    let advice = match c.verdict {
        landscape::Verdict::ExactAndFpras => {
            "safe: exact lifted inference applies (and so does the FPRAS)"
        }
        landscape::Verdict::FprasOnly => {
            "#P-hard exactly; the combined FPRAS is the guaranteed option"
        }
        landscape::Verdict::ExactOnly => "exact lifted inference only (width unbounded)",
        landscape::Verdict::Open => "outside all positive cells of Table 1",
    };
    println!("advice   : {advice}");
    Ok(())
}

fn cmd_sample(args: &Args) -> Result<(), String> {
    args.check_known(&["db", "query", "count", "seed", "epsilon"])?;
    let h = load_db(args)?;
    let q = load_query(args)?;
    let count: usize = match args.opt("count") {
        None => 5,
        Some(s) => s.parse().map_err(|_| format!("bad --count {s:?}"))?,
    };
    let cfg = FprasConfig::with_epsilon(args.epsilon()?).with_seed(args.seed()?);
    let sampler = WeightedWorldSampler::new(&q, &h, cfg).map_err(|e| e.to_string())?;
    let mut rng = StdRng::seed_from_u64(args.seed()?);
    let worlds = sampler.sample_batch(count, &mut rng);
    if worlds.is_empty() {
        println!("no satisfying world exists (Pr(Q) = 0)");
        return Ok(());
    }
    for (i, w) in worlds.iter().enumerate() {
        let facts: Vec<String> = h
            .database()
            .fact_ids()
            .filter(|f| w[f.index()])
            .map(|f| h.database().display_fact(f))
            .collect();
        println!("world {}: {{{}}}", i + 1, facts.join(", "));
    }
    Ok(())
}

fn cmd_marginals(args: &Args) -> Result<(), String> {
    args.check_known(&["db", "query", "samples", "seed", "epsilon"])?;
    let h = load_db(args)?;
    let q = load_query(args)?;
    let samples: usize = match args.opt("samples") {
        None => 2000,
        Some(s) => s.parse().map_err(|_| format!("bad --samples {s:?}"))?,
    };
    let cfg = FprasConfig::with_epsilon(args.epsilon()?).with_seed(args.seed()?);
    let sampler = WeightedWorldSampler::new(&q, &h, cfg).map_err(|e| e.to_string())?;
    let mut rng = StdRng::seed_from_u64(args.seed()?);
    let Some(marginals) = sampler.marginals(samples, &mut rng) else {
        println!("Pr(Q) = 0: conditional marginals undefined");
        return Ok(());
    };
    println!("P(fact ∈ world | Q holds), from {samples} conditioned samples:");
    let mut rows: Vec<(f64, String)> = h
        .database()
        .fact_ids()
        .map(|f| (marginals[f.index()], h.database().display_fact(f)))
        .collect();
    rows.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    for (p, fact) in rows {
        println!("  {p:.4}  {fact}");
    }
    Ok(())
}

fn cmd_influence(args: &Args) -> Result<(), String> {
    args.check_known(&["db", "query", "epsilon", "seed"])?;
    let h = load_db(args)?;
    let q = load_query(args)?;
    let cfg = FprasConfig::with_epsilon(args.epsilon()?).with_seed(args.seed()?);
    println!("influence ∂Pr(Q)/∂π(f) = Pr(Q|f=1) − Pr(Q|f=0):");
    let mut rows: Vec<(f64, String)> = Vec::new();
    for f in h.database().fact_ids() {
        let inf = pqe::core::fact_influence(&q, &h, f, &cfg).map_err(|e| e.to_string())?;
        rows.push((inf, h.database().display_fact(f)));
    }
    rows.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    for (inf, fact) in rows {
        println!("  {inf:+.4}  {fact}");
    }
    Ok(())
}

fn cmd_lineage(args: &Args) -> Result<(), String> {
    args.check_known(&["db", "query", "materialize"])?;
    let h = load_db(args)?;
    let q = load_query(args)?;
    let count = Lineage::clause_count(&q, h.database());
    println!("lineage clauses: {count}");
    if let Some(limit) = args.opt("materialize") {
        let limit: usize = limit.parse().map_err(|_| "bad --materialize".to_owned())?;
        let lin = Lineage::build(&q, h.database(), limit);
        for clause in lin.clauses() {
            let facts: Vec<String> = clause
                .iter()
                .map(|&f| h.database().display_fact(f))
                .collect();
            println!("  {}", facts.join(" ∧ "));
        }
        if lin.truncated() {
            println!("  … truncated at {limit}");
        }
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    args.check_known(&[
        "db",
        "graph",
        "addr",
        "workers",
        "queue-depth",
        "max-inflight", // legacy alias for --queue-depth
        "deadline-ms",
        "cache-capacity",
        "threads",
    ])?;
    let h = load_db(args)?;
    let g = match args.opt("graph") {
        Some(_) => Some(load_graph(args)?),
        None => None,
    };
    let parse_opt = |name: &str, default: usize| -> Result<usize, String> {
        match args.opt(name) {
            None => Ok(default),
            Some(s) => s.parse().map_err(|_| format!("bad --{name} {s:?}")),
        }
    };
    let defaults = ServeConfig::default();
    // --max-inflight predates the sharded-worker rework; it bounded the
    // number of concurrently computing requests, which is now the role of
    // the work queue, so it survives as an alias for --queue-depth.
    let queue_depth = match args.opt("queue-depth") {
        Some(_) => parse_opt("queue-depth", defaults.queue_depth)?,
        None => parse_opt("max-inflight", defaults.queue_depth)?,
    };
    let cfg = ServeConfig {
        addr: args.opt("addr").unwrap_or("127.0.0.1:7431").to_owned(),
        workers: parse_opt("workers", defaults.workers)?.max(1),
        queue_depth: queue_depth.max(1),
        deadline_ms: parse_opt("deadline-ms", defaults.deadline_ms as usize)? as u64,
        cache_capacity: parse_opt("cache-capacity", defaults.cache_capacity)?.max(1),
        threads: args.threads()?,
    };
    let server = Server::bind_with_graph(cfg, h, g).map_err(|e| format!("bind: {e}"))?;
    // Scripts parse this line for the ephemeral port; keep the format.
    println!("pqe-serve listening on {}", server.local_addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    server.run().map_err(|e| format!("serve: {e}"))?;
    println!("pqe-serve: clean shutdown");
    Ok(())
}

fn cmd_apply_delta(args: &Args) -> Result<(), String> {
    args.check_known(&["db", "delta", "output"])?;
    let h = load_db(args)?;
    let delta_path = args.require("delta")?;
    let text = std::fs::read_to_string(delta_path)
        .map_err(|e| format!("could not read delta file {delta_path:?}: {e}"))?;
    let delta = Delta::parse_str(&text).map_err(|e| format!("parse {delta_path}: {e}"))?;
    let mut db = VersionedDb::new(h);
    let report = db.apply(&delta).map_err(|e| format!("apply: {e}"))?;
    println!(
        "applied {} op(s): {} inserted, {} deleted, {} reprobed",
        delta.len(),
        report.inserted,
        report.deleted,
        report.reprobed
    );
    if !report.touched.is_empty() {
        println!("touched relations: {}", report.touched.join(", "));
    }
    if report.is_probability_only() && !report.is_noop() {
        println!("probability-only: compiled plans stay structurally valid");
    } else if !report.structural.is_empty() {
        println!("structural changes: {}", report.structural.join(", "));
    }
    // Default to rewriting the input in place; --output redirects so the
    // original fixture survives (e.g. for before/after comparisons).
    let out = match args.opt("output") {
        Some(p) => p,
        None => args.require("db")?,
    };
    dbio::save(db.current(), out).map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {} fact(s) to {out}", db.current().len());
    Ok(())
}

fn cmd_bench_serve(args: &Args) -> Result<(), String> {
    args.check_known(&[
        "db",
        "query",
        "connections",
        "requests",
        "repeat-ratio",
        "epsilon",
        "seed",
        "method",
        "threads",
        "workers",
        "update-mix",
        "update-delta",
    ])?;
    // --db is optional here: without it the bench runs over the seeded
    // synthetic triangle-graph instance, so `pqe bench-serve` needs no
    // fixture file and every machine measures the same database.
    let h = match args.opt("db") {
        Some(_) => load_db(args)?,
        None => pqe::serve::loadgen::synthetic_triangle_db(6, 35, 0xE8),
    };
    let parse_opt = |name: &str, default: usize| -> Result<usize, String> {
        match args.opt(name) {
            None => Ok(default),
            Some(s) => s.parse().map_err(|_| format!("bad --{name} {s:?}")),
        }
    };
    let parse_ratio = |name: &str, default: f64| -> Result<f64, String> {
        match args.opt(name) {
            None => Ok(default),
            Some(s) => {
                let r: f64 = s.parse().map_err(|_| format!("bad --{name} {s:?}"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("--{name} must lie in [0,1], got {r}"));
                }
                Ok(r)
            }
        }
    };
    let repeat_ratio = parse_ratio("repeat-ratio", 0.8)?;
    let update_mix = parse_ratio("update-mix", 0.0)?;
    let update_delta = args.opt("update-delta").unwrap_or("").to_owned();
    if update_mix > 0.0 && update_delta.is_empty() {
        return Err("--update-mix needs --update-delta to supply the batch text".to_owned());
    }
    // --connections pins a single point; the default sweeps the axis so
    // BENCH_serve.json carries throughput at every concurrency level.
    let axis: Vec<usize> = match args.opt("connections") {
        Some(_) => vec![parse_opt("connections", 4)?.max(1)],
        None => vec![1, 4, 16, 64],
    };
    // --requests is the total budget per axis point (split across the
    // point's connections), so every point costs about the same.
    let total_requests = parse_opt("requests", 192)?.max(1);
    let base = LoadConfig {
        addr: String::new(), // bound per axis point
        connections: 1,
        requests: 1,
        repeat_ratio,
        query: args
            .opt("query")
            .unwrap_or("R1(x,y), R2(y,z), R3(z,x)")
            .to_owned(),
        epsilon: args.epsilon()?,
        seed: args.seed()?,
        method: args.opt("method").unwrap_or("auto").to_owned(),
        update_mix,
        update_delta,
    };
    let workers = parse_opt("workers", ServeConfig::default().workers)?.max(1);

    let mut r = Runner::new("serve");
    r.start();
    let headline = axis.iter().copied().find(|&c| c == 16).unwrap_or(*axis.last().unwrap());
    let mut total_errors = 0u64;
    for &conns in &axis {
        // A fresh in-process server per point: cold caches at every
        // concurrency level, so the points are comparable.
        let serve_cfg = ServeConfig {
            workers,
            threads: args.threads()?,
            ..ServeConfig::default()
        };
        let server = Server::bind(serve_cfg, h.clone()).map_err(|e| format!("bind: {e}"))?;
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run());
        let load = LoadConfig {
            addr: addr.to_string(),
            connections: conns,
            requests: (total_requests / conns).max(3),
            ..base.clone()
        };
        println!(
            "bench-serve: {} connections × {} requests, repeat ratio {}, query {:?}",
            load.connections, load.requests, load.repeat_ratio, load.query
        );
        let report = run_load(&load).map_err(|e| format!("load run: {e}"))?;
        println!(
            "  c{conns}: {:.1} rps, p50 {}us, p99 {}us, hit p99 {}us, {} errors",
            report.throughput_rps, report.p50_us, report.p99_us, report.hit_p99_us, report.errors
        );
        if report.updates > 0 {
            println!(
                "  c{conns}: {} updates interleaved, {} plan invalidations observed",
                report.updates, report.invalidated
            );
        }

        let p = format!("c{conns}.");
        r.metric(&format!("{p}requests"), report.requests as f64);
        r.metric(&format!("{p}errors"), report.errors as f64);
        r.metric(&format!("{p}overloaded"), report.overloaded as f64);
        r.metric(&format!("{p}timeouts"), report.timeouts as f64);
        r.metric(&format!("{p}eval_errors"), report.eval_errors as f64);
        r.metric(&format!("{p}throughput_rps"), report.throughput_rps);
        r.metric(&format!("{p}latency_p50_us"), report.p50_us as f64);
        r.metric(&format!("{p}latency_p95_us"), report.p95_us as f64);
        r.metric(&format!("{p}latency_p99_us"), report.p99_us as f64);
        r.metric(&format!("{p}hit_p99_us"), report.hit_p99_us as f64);
        r.metric(&format!("{p}connect_mean_us"), report.connect_mean_us);
        r.metric(&format!("{p}cache_hit_rate"), report.hit_rate);
        r.metric(&format!("{p}hit_mean_us"), report.hit_mean_us);
        r.metric(&format!("{p}cold_compile_mean_us"), report.miss_mean_us);
        r.metric(&format!("{p}hit_speedup"), report.hit_speedup);
        r.metric(&format!("{p}updates"), report.updates as f64);
        r.metric(&format!("{p}invalidated"), report.invalidated as f64);
        if conns == headline {
            // Unprefixed legacy names: dashboards tracking the old
            // single-point report keep working off the headline point.
            r.metric("requests", report.requests as f64);
            r.metric("errors", report.errors as f64);
            r.metric("throughput_rps", report.throughput_rps);
            r.metric("latency_p50_us", report.p50_us as f64);
            r.metric("latency_p95_us", report.p95_us as f64);
            r.metric("latency_p99_us", report.p99_us as f64);
            r.metric("cache_hit_rate", report.hit_rate);
            r.metric("hit_mean_us", report.hit_mean_us);
            r.metric("cold_compile_mean_us", report.miss_mean_us);
            r.metric("hit_speedup", report.hit_speedup);
        }
        total_errors += report.errors;

        // Shut the point's server down over the wire.
        use std::io::{BufRead as _, BufReader, Write as _};
        let mut c = std::net::TcpStream::connect(addr).map_err(|e| e.to_string())?;
        c.write_all(b"{\"op\":\"shutdown\"}\n").map_err(|e| e.to_string())?;
        let mut line = String::new();
        BufReader::new(c).read_line(&mut line).ok();
        handle
            .join()
            .map_err(|_| "server thread panicked".to_owned())?
            .map_err(|e| format!("serve: {e}"))?;
    }
    r.finish();

    if total_errors > 0 {
        return Err(format!("{total_errors} request(s) failed during the load run"));
    }
    Ok(())
}

/// Enables span recording for the duration of a profiled command and
/// prints the rendered tree (plus the fpras.* counters) when dropped.
/// Profiling never touches RNG streams, so the printed digits are
/// bit-identical to an unprofiled run.
struct ProfileGuard {
    root: Option<pqe_obs::span::Span>,
}

impl ProfileGuard {
    fn start(enabled: bool, root: &'static str) -> ProfileGuard {
        if !enabled {
            return ProfileGuard { root: None };
        }
        pqe_obs::span::set_enabled(true);
        ProfileGuard { root: Some(pqe_obs::span::span(root)) }
    }
}

impl Drop for ProfileGuard {
    fn drop(&mut self) {
        let Some(root) = self.root.take() else { return };
        drop(root); // close the root span before snapshotting
        pqe_obs::span::set_enabled(false);
        let snap = pqe_obs::span::snapshot();
        println!("\n--- profile: phase totals (summed across threads) ---");
        print!("{}", pqe_obs::span::render(&snap));
        let metrics = pqe_obs::metrics::snapshot();
        let fpras: Vec<_> = metrics
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("fpras."))
            .collect();
        if !fpras.is_empty() {
            println!("--- counters ---");
            for (name, value) in fpras {
                println!("{name:<42} {value:>12}");
            }
        }
    }
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        return Err("no command given (see `pqe help`)".to_owned());
    };
    let args = parse_args(&argv[1..])?;
    if !args.positional.is_empty() {
        return Err(format!("unexpected argument {:?}", args.positional[0]));
    }
    match cmd.as_str() {
        "estimate" => cmd_estimate(&args),
        "graph-estimate" => cmd_graph_estimate(&args),
        "reliability" => cmd_reliability(&args),
        "classify" => cmd_classify(&args),
        "sample" => cmd_sample(&args),
        "marginals" => cmd_marginals(&args),
        "influence" => cmd_influence(&args),
        "lineage" => cmd_lineage(&args),
        "apply-delta" => cmd_apply_delta(&args),
        "serve" => cmd_serve(&args),
        "bench-serve" => cmd_bench_serve(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?} (see `pqe help`)")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
