//! Querying an uncertain knowledge graph — the "knowledge extracted from
//! text using an imperfect NLP system" motivation of the paper's
//! introduction.
//!
//! Extracted triples carry confidence scores; we ask a *safe* star query
//! ("is there a person with a known employer, a known home city, and a
//! known advisor?") and an *unsafe* chain query ("does some person work at
//! a company headquartered in a city located in a country?"), showing how
//! the Table 1 landscape routes each to the right algorithm.
//!
//! ```sh
//! cargo run --release --example knowledge_graph
//! ```

use pqe::automata::FprasConfig;
use pqe::core::baselines::{brute_force_pqe, lifted_pqe};
use pqe::core::{landscape, pqe_estimate};
use pqe::db::{Database, ProbDatabase, Schema};
use pqe::query::parse;
use pqe_arith::Rational;

fn main() {
    let mut db = Database::new(Schema::new([
        ("worksAt", 2),
        ("livesIn", 2),
        ("advisedBy", 2),
        ("hqIn", 2),
        ("locatedIn", 2),
    ]));
    // (fact, extractor confidence)
    let triples: Vec<(&str, [&str; 2], &str)> = vec![
        ("worksAt", ["ada", "acme"], "9/10"),
        ("worksAt", ["bob", "acme"], "3/5"),
        ("worksAt", ["cyd", "initech"], "4/5"),
        ("livesIn", ["ada", "zurich"], "7/10"),
        ("livesIn", ["bob", "oslo"], "1/2"),
        ("advisedBy", ["ada", "grace"], "2/3"),
        ("advisedBy", ["cyd", "alan"], "1/3"),
        ("hqIn", ["acme", "zurich"], "4/5"),
        ("hqIn", ["initech", "austin"], "9/10"),
        ("locatedIn", ["zurich", "ch"], "99/100"),
        ("locatedIn", ["austin", "us"], "97/100"),
    ];
    let mut probs: Vec<Rational> = Vec::new();
    for (rel, args, p) in &triples {
        db.add_fact(rel, &[args[0], args[1]]).unwrap();
        probs.push(p.parse().unwrap());
    }
    let h = ProbDatabase::with_probs(db, probs).unwrap();
    println!("knowledge graph: {} uncertain triples\n", h.len());

    let cfg = FprasConfig::with_epsilon(0.1).with_seed(5);

    // --- Safe star query: exact lifted inference applies. ---
    let star = parse("worksAt(p,e), livesIn(p,c), advisedBy(p,a)").unwrap();
    println!("Q1 (star) : {star}");
    println!("  landscape: {}", landscape::classify(&star));
    let exact = lifted_pqe(&star, &h).expect("hierarchical query");
    println!("  lifted (exact)  : {} ≈ {:.6}", exact, exact.to_f64());
    let rep = pqe_estimate(&star, &h, &cfg).unwrap();
    println!("  PQEEstimate     : {:.6}", rep.probability.to_f64());

    // --- Unsafe chain query: only the FPRAS gives guarantees. ---
    let chain = parse("worksAt(p,e), hqIn(e,c), locatedIn(c,n)").unwrap();
    println!("\nQ2 (chain): {chain}");
    println!("  landscape: {}", landscape::classify(&chain));
    match lifted_pqe(&chain, &h) {
        Err(e) => println!("  lifted          : refused — {e}"),
        Ok(_) => unreachable!("chain of length 3 is unsafe"),
    }
    let rep = pqe_estimate(&chain, &h, &cfg).unwrap();
    println!("  PQEEstimate     : {:.6}", rep.probability.to_f64());
    let exact = brute_force_pqe(&chain, &h);
    let rel = (rep.probability.to_f64() / exact.to_f64() - 1.0).abs();
    println!(
        "  brute force     : {:.6}  (rel. error {rel:.4})",
        exact.to_f64()
    );
    assert!(rel <= cfg.epsilon);
}
