//! Uniform reliability (§4): counting satisfying subinstances.
//!
//! `UR(Q, D)` counts the sub-networks of `D` in which `Q` still holds —
//! the combinatorial core of PQE (`Pr_{π≡½}(Q) = UR / 2^{|D|}`, paper §2).
//! This example runs the two reduction routes side by side on the same
//! instance:
//!
//! * Theorem 2 (`PathEstimate`): path query → string automaton → CountNFA;
//! * Theorem 3 (`UREstimate`):  query → tree automaton → CountNFTA;
//!
//! and cross-checks both against exact brute force.
//!
//! ```sh
//! cargo run --release --example network_reliability
//! ```

use pqe::automata::FprasConfig;
use pqe::core::baselines::brute_force_ur;
use pqe::core::{path_ur_estimate, ur_estimate};
use pqe::db::generators;
use pqe::query::shapes;
use pqe_rand::rngs::StdRng;
use pqe_rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(77);
    let hops = 3;
    let db = generators::layered_graph_connected(hops, 2, 0.7, &mut rng);
    let q = shapes::path_query(hops);
    println!("instance : {} facts;  query: {q}", db.len());

    let exact = brute_force_ur(&q, &db);
    println!("exact UR : {exact}  (of 2^{} = {} subinstances)", db.len(), 1u64 << db.len());

    let cfg = FprasConfig::with_epsilon(0.1).with_seed(42);

    let via_nfa = path_ur_estimate(&q, &db, &cfg).unwrap();
    println!(
        "Thm 2 (NFA route)  : {:.1}   [{} states, strings of length {}]",
        via_nfa.reliability.to_f64(),
        via_nfa.automaton_states,
        via_nfa.target_len
    );

    let via_nfta = ur_estimate(&q, &db, &cfg).unwrap();
    println!(
        "Thm 3 (NFTA route) : {:.1}   [{} states, trees of size {}]",
        via_nfta.reliability.to_f64(),
        via_nfta.automaton_states,
        via_nfta.target_size
    );

    let exact_f = exact.to_f64();
    for (name, est) in [("NFA", &via_nfa.reliability), ("NFTA", &via_nfta.reliability)] {
        let rel = (est.to_f64() / exact_f - 1.0).abs();
        println!("{name} relative error : {rel:.4}");
        assert!(rel <= cfg.epsilon, "{name} estimate outside ε");
    }

    // Scale up: a larger instance far beyond brute force (2^60 worlds),
    // where only the FPRAS routes remain feasible.
    let big = generators::layered_graph_connected(5, 4, 0.6, &mut rng);
    let qb = shapes::path_query(5);
    println!("\nscaled-up instance: {} facts (2^{} subinstances)", big.len(), big.len());
    let est = ur_estimate(&qb, &big, &FprasConfig::with_epsilon(0.2).with_seed(1)).unwrap();
    println!(
        "UREstimate ≈ {}  in {:?} ({} automaton states)",
        est.reliability, est.elapsed, est.automaton_states
    );
}
