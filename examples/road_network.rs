//! Road-network reliability: corner-to-corner reachability across a grid
//! of flaky road segments — graph reliability as a regular path query
//! over a probabilistic graph.
//!
//! Each road segment is open independently with a surveyed probability;
//! the query asks for the probability that *some* open route
//! `v0_0 -road*-> v{r}_{c}` exists. Exact evaluation is #P-hard (it
//! contains two-terminal network reliability), but on a DAG the RPQ
//! compiles to a product NFA whose string counts the CountNFA FPRAS
//! approximates in polynomial time.
//!
//! ```sh
//! cargo run --release --example road_network
//! ```

use pqe::automata::FprasConfig;
use pqe::core::{GraphAnswer, GraphMethod, GraphPlan};
use pqe::graph::generators::road_grid;
use pqe::graph::{enumerate_probability, parse};
use pqe_rand::rngs::StdRng;
use pqe_rand::SeedableRng;

fn main() {
    let (rows, cols) = (3, 3);
    let mut rng = StdRng::seed_from_u64(2026);

    // Topology: rows × cols intersections, right/down road segments each
    // open with a random surveyed probability w/d, d ≤ 8.
    let g = road_grid(rows, cols, 8, &mut rng);
    println!(
        "network  : {rows}×{cols} grid, {} intersections, {} segments",
        g.num_vertices(),
        g.num_edges()
    );

    let rpq = parse(&format!("v0_0 -> road* -> v{}_{}", rows - 1, cols - 1)).unwrap();
    println!("query    : {rpq}");

    // Force the FPRAS so both engines run side by side (auto would route
    // this 12-edge instance to enumeration).
    let plan = GraphPlan::compile(&g, &rpq, GraphMethod::Fpras).expect("grid is a DAG");
    let cfg = FprasConfig::with_epsilon(0.1).with_seed(99);
    let GraphAnswer::Estimate { probability, elapsed } = plan.execute(&cfg) else {
        unreachable!("forced fpras route");
    };
    println!(
        "FPRAS    : route open with probability ≈ {:.6}  ({} product-NFA states, {:?})",
        probability.to_f64(),
        plan.automaton_states(),
        elapsed
    );

    if g.num_edges() <= 16 {
        let exact = enumerate_probability(&g, &rpq).unwrap();
        let rel = (probability.to_f64() / exact.to_f64() - 1.0).abs();
        println!("exact    : {:.6} = {exact}  (rel. error {rel:.4})", exact.to_f64());
    } else {
        println!("exact    : skipped ({0} segments ⇒ 2^{0} worlds)", g.num_edges());
    }
}
