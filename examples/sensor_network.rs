//! Sensor-network reliability: multi-hop delivery through layers of flaky
//! relays — the "data collected from noisy sensors" motivation of the
//! paper's introduction.
//!
//! A reading reaches the sink if some chain
//! `Hop1(sensor, relay₁), Hop2(relay₁, relay₂), …, Hopₙ(relayₙ₋₁, sink)`
//! of links is simultaneously alive. Each link is alive independently with
//! its measured reliability. For `n ≥ 3` hops this is exactly the `3Path`
//! class: #P-hard to evaluate exactly, approximable by the combined FPRAS
//! in time polynomial in both the hop count and the network size.
//!
//! ```sh
//! cargo run --release --example sensor_network
//! ```

use pqe::automata::FprasConfig;
use pqe::core::baselines::{brute_force_pqe, naive_monte_carlo_pqe};
use pqe::core::pqe_estimate;
use pqe::db::{generators, ProbDatabase};
use pqe::query::shapes;
use pqe_rand::rngs::StdRng;
use pqe_rand::SeedableRng;

fn main() {
    let hops = 4;
    let relays_per_layer = 3;
    let mut rng = StdRng::seed_from_u64(2024);

    // Topology: layered relay graph, each physical link present.
    let db = generators::layered_graph_connected(hops, relays_per_layer, 0.45, &mut rng);
    println!(
        "network  : {} hops × {} relays/layer, {} links",
        hops,
        relays_per_layer,
        db.len()
    );

    // Reliability labels: links succeed with probability w/d, d ≤ 8.
    let h: ProbDatabase = generators::with_random_probs(db, 8, &mut rng);
    let q = shapes::path_query(hops);
    println!("query    : {q}");

    let cfg = FprasConfig::with_epsilon(0.1).with_seed(99);
    let report = pqe_estimate(&q, &h, &cfg).expect("path queries are in scope");
    println!(
        "FPRAS    : delivery probability ≈ {:.6}  ({} automaton states, {:?})",
        report.probability.to_f64(),
        report.automaton_states,
        report.elapsed
    );

    if h.len() <= 20 {
        let exact = brute_force_pqe(&q, &h);
        let rel = (report.probability.to_f64() / exact.to_f64() - 1.0).abs();
        println!("exact    : {:.6}  (rel. error {rel:.4})", exact.to_f64());
    } else {
        println!("exact    : skipped ({} facts ⇒ 2^{} worlds)", h.len(), h.len());
    }

    // Naive Monte Carlo for contrast: additive guarantee only.
    let mc = naive_monte_carlo_pqe(&q, &h, 20_000, 7);
    println!("naive MC : {mc:.6}  (20k worlds, additive error only)");
}
