//! A guided tour of the paper's Table 1: one query per landscape cell,
//! each routed to every algorithm that applies to it.
//!
//! ```sh
//! cargo run --release --example landscape_tour
//! ```

use pqe::automata::FprasConfig;
use pqe::core::baselines::{brute_force_pqe, lifted_pqe};
use pqe::core::{landscape, pqe_estimate};
use pqe::db::{generators, ProbDatabase};
use pqe::query::{shapes, ConjunctiveQuery};
use pqe_arith::Rational;
use pqe_rand::rngs::StdRng;
use pqe_rand::SeedableRng;

fn show(name: &str, q: &ConjunctiveQuery, h: &ProbDatabase, cfg: &FprasConfig) {
    println!("── {name}");
    println!("   query : {q}");
    let class = landscape::classify(q);
    println!("   cell  : {class}");

    match lifted_pqe(q, h) {
        Ok(p) => println!("   lifted (exact, poly)      : {:.6}", p.to_f64()),
        Err(e) => println!("   lifted                    : n/a — {e}"),
    }
    match pqe_estimate(q, h, cfg) {
        Ok(r) => println!(
            "   PQEEstimate (FPRAS)       : {:.6}  ({:?})",
            r.probability.to_f64(),
            r.elapsed
        ),
        Err(e) => println!("   PQEEstimate               : n/a — {e}"),
    }
    if h.len() <= 18 {
        let exact = brute_force_pqe(q, h);
        println!("   brute force (exponential) : {:.6}", exact.to_f64());
    }
    println!();
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let cfg = FprasConfig::with_epsilon(0.15).with_seed(3);
    println!("The Combined FPRAS Landscape (paper Table 1)\n");

    // Row 1: bounded width, self-join-free, safe → FP exactly AND FPRAS.
    let star = shapes::star_query(3);
    let db = generators::star_data(3, 2, 2, 0.8, &mut rng);
    let h = generators::with_random_probs(db, 6, &mut rng);
    show("Row 1: safe + bounded width (star query)", &star, &h, &cfg);

    // Row 2: bounded width, self-join-free, unsafe → #P-hard, FPRAS.
    let path = shapes::path_query(3);
    let db = generators::layered_graph_connected(3, 2, 0.6, &mut rng);
    let h = generators::with_random_probs(db, 6, &mut rng);
    show("Row 2: unsafe + bounded width (3Path — the headline cell)", &path, &h, &cfg);

    // Row 2 again, cyclic width-2 variant.
    let cyc = shapes::cycle_query(3);
    let mut db = pqe::db::Database::new(pqe::db::Schema::new([("R1", 2), ("R2", 2), ("R3", 2)]));
    for (r, a, b) in [
        ("R1", "a", "b"),
        ("R1", "a", "c"),
        ("R2", "b", "c"),
        ("R2", "c", "d"),
        ("R3", "c", "a"),
        ("R3", "d", "a"),
    ] {
        db.add_fact(r, &[a, b]).unwrap();
    }
    let h = generators::with_uniform_probs(db, Rational::from_ratio(1, 2));
    show("Row 2 (cyclic, hypertree width 2)", &cyc, &h, &cfg);

    // Row 3: unbounded width but safe → lifted inference only.
    // A wide star is still width 1; for genuinely high width + safe we use
    // a clique of arms sharing the root... cliques are unsafe, so row 3 is
    // demonstrated with a star whose width is driven up artificially by a
    // wide guard atom.
    let wide = pqe::query::parse(
        "G(x1,x2,x3,x4,x5,x6,x7,x8), R1(x1,y1), R2(x1,y2)",
    )
    .unwrap();
    let mut db = pqe::db::Database::new(pqe::db::Schema::new([
        ("G", 8),
        ("R1", 2),
        ("R2", 2),
    ]));
    db.add_fact("G", &["a", "b", "c", "d", "e", "f", "g", "h"]).unwrap();
    db.add_fact("R1", &["a", "u"]).unwrap();
    db.add_fact("R2", &["a", "v"]).unwrap();
    let h = generators::with_random_probs(db, 5, &mut rng);
    // (This one is width 1 thanks to the guard; see EXPERIMENTS.md E3 for
    // the genuine unbounded-width discussion — cliques.)
    show("Row 3 flavour: safe, wide guard atom", &wide, &h, &cfg);

    // Row 4 / Open: self-joins.
    let sj = shapes::self_join_path(3);
    let mut db = pqe::db::Database::new(pqe::db::Schema::new([("R", 2)]));
    for (a, b) in [("a", "b"), ("b", "c"), ("c", "d")] {
        db.add_fact("R", &[a, b]).unwrap();
    }
    let h = generators::with_uniform_probs(db, Rational::from_ratio(1, 2));
    show("Open: self-join path (outside the FPRAS's scope)", &sj, &h, &cfg);

    // Open: unsafe AND unbounded width (clique). K5 still has width 3
    // (three edges cover five vertices), so it takes K8 (width 4) to leave
    // the bounded regime.
    let k8 = shapes::clique_query(8);
    let c = landscape::classify(&k8);
    println!("── Open: K8 clique query ({} atoms)", k8.len());
    println!("   cell  : {c}");
    assert!(!c.bounded_width);
    println!("   (exact evaluation #P-hard, width beyond the bounded regime)");
}
