//! Sampling possible worlds *conditioned on the query holding* — the
//! generation side of the CountNFTA machinery.
//!
//! Rejection sampling (draw a world, keep it if `Q` holds) collapses when
//! `Pr_H(Q)` is small; the automaton sampler draws satisfying worlds
//! directly, at any probability scale.
//!
//! ```sh
//! cargo run --release --example world_sampling
//! ```

use pqe::automata::FprasConfig;
use pqe::core::baselines::brute_force_pqe;
use pqe::core::worlds::{UniformWorldSampler, WeightedWorldSampler};
use pqe::db::{generators, worlds};
use pqe::engine::eval_boolean;
use pqe::query::shapes;
use pqe_arith::Rational;
use pqe_rand::rngs::StdRng;
use pqe_rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(314);
    let db = generators::layered_graph_connected(3, 2, 0.5, &mut rng);
    let q = shapes::path_query(3);
    println!("instance: {} facts;  query: {q}\n", db.len());

    // ── Uniform over satisfying subinstances ────────────────────────────
    let cfg = FprasConfig::with_epsilon(0.15).with_seed(1);
    let sampler = UniformWorldSampler::new(&q, &db, cfg.clone()).unwrap();
    let samples = sampler.sample_batch(2000, &mut rng);
    println!(
        "uniform sampler: {} draws, all satisfying: {}",
        samples.len(),
        samples
            .iter()
            .all(|w| eval_boolean(&q, &db.subinstance(w)))
    );
    let distinct: std::collections::BTreeSet<_> = samples.iter().collect();
    println!("distinct satisfying worlds seen: {}", distinct.len());

    // ── Weighted by world probability, conditioned on Q ─────────────────
    let h = generators::with_random_probs(db.clone(), 6, &mut rng);
    let wsampler = WeightedWorldSampler::new(&q, &h, cfg).unwrap();
    let wsamples = wsampler.sample_batch(2000, &mut rng);

    // Cross-check a marginal against exact conditional arithmetic.
    let f0 = 0usize; // first fact
    let pr_q = brute_force_pqe(&q, &h);
    let mut joint = Rational::zero();
    for w in worlds::enumerate(db.len()) {
        if w[f0] && eval_boolean(&q, &db.subinstance(&w)) {
            joint = &joint + &h.world_prob(&w);
        }
    }
    let exact_marginal = (&joint / &pr_q).to_f64();
    let sampled_marginal =
        wsamples.iter().filter(|w| w[f0]).count() as f64 / wsamples.len() as f64;
    println!(
        "\nweighted sampler: P({} ∈ D' | Q) exact {exact_marginal:.4}, sampled {sampled_marginal:.4}",
        db.display_fact(pqe::db::FactId(f0 as u32))
    );

    // ── Why not rejection sampling? ─────────────────────────────────────
    // Push probabilities down so Pr(Q) is tiny: rejection wastes almost
    // every draw; the conditioned sampler is unaffected.
    let tiny = generators::with_uniform_probs(db.clone(), Rational::from_ratio(1, 50));
    let pr_tiny = brute_force_pqe(&q, &tiny).to_f64();
    println!("\nlow-probability regime: Pr(Q) = {pr_tiny:.2e}");
    let mut hits = 0;
    for _ in 0..5000 {
        let w = worlds::sample_world(&tiny, &mut rng);
        if eval_boolean(&q, &db.subinstance(&w)) {
            hits += 1;
        }
    }
    println!("rejection sampling: {hits}/5000 draws satisfied Q");
    let tsampler =
        WeightedWorldSampler::new(&q, &tiny, FprasConfig::with_epsilon(0.2).with_seed(2)).unwrap();
    let tsamples = tsampler.sample_batch(100, &mut rng);
    println!(
        "conditioned sampler: {}/100 draws satisfied Q (by construction)",
        tsamples
            .iter()
            .filter(|w| eval_boolean(&q, &db.subinstance(w)))
            .count()
    );
}
