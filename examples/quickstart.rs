//! Quickstart: build a small probabilistic database, ask a #P-hard query,
//! and compare the FPRAS estimate against exact baselines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pqe::automata::FprasConfig;
use pqe::core::baselines::{brute_force_pqe, lifted_pqe};
use pqe::core::{landscape, pqe_estimate};
use pqe::db::{Database, ProbDatabase, Schema};
use pqe::query::parse;

fn main() {
    // A tiny road network with uncertain edges: does a route
    // a →(Road1)→ ? →(Road2)→ ? →(Road3)→ ? exist?
    let mut db = Database::new(Schema::new([("Road1", 2), ("Road2", 2), ("Road3", 2)]));
    let mut facts = Vec::new();
    for (rel, src, dst) in [
        ("Road1", "a", "b"),
        ("Road1", "a", "c"),
        ("Road2", "b", "d"),
        ("Road2", "c", "d"),
        ("Road2", "c", "e"),
        ("Road3", "d", "f"),
        ("Road3", "e", "f"),
    ] {
        facts.push(db.add_fact(rel, &[src, dst]).unwrap());
    }
    let mut h = ProbDatabase::uniform(db, "1/2".parse().unwrap());
    // Some roads are more reliable than others.
    h.set_prob(facts[0], "9/10".parse().unwrap());
    h.set_prob(facts[5], "3/4".parse().unwrap());

    let q = parse("Road1(x,y), Road2(y,z), Road3(z,w)").unwrap();
    println!("query     : {q}");

    // Where does this query sit in the paper's Table 1?
    let class = landscape::classify(&q);
    println!("landscape : {class}");
    println!("            (3Path class: #P-hard exactly, FPRAS applies)");

    // Exact lifted inference must refuse: the query is unsafe.
    match lifted_pqe(&q, &h) {
        Err(e) => println!("lifted    : refused as expected — {e}"),
        Ok(p) => println!("lifted    : unexpectedly succeeded: {p}"),
    }

    // The paper's FPRAS (Theorem 1).
    let cfg = FprasConfig::with_epsilon(0.1);
    let report = pqe_estimate(&q, &h, &cfg).expect("SJF bounded-width query");
    println!(
        "PQEEstimate : {:.6}   (ε = {}, k = {}, {} states, {:?})",
        report.probability.to_f64(),
        cfg.epsilon,
        report.target_size,
        report.automaton_states,
        report.elapsed
    );

    // Ground truth by brute force (2^7 worlds).
    let exact = brute_force_pqe(&q, &h);
    println!("exact       : {:.6}   ({exact})", exact.to_f64());

    let rel = (report.probability.to_f64() / exact.to_f64() - 1.0).abs();
    println!("rel. error  : {rel:.4}");
    assert!(rel <= cfg.epsilon, "estimate outside the ε guarantee");
    println!("within the (1±ε) guarantee ✓");
}
