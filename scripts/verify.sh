#!/usr/bin/env bash
# Tier-1 verification, hermetic by construction: --offline proves the
# workspace needs nothing from crates.io (all deps are in-tree path
# crates; see DESIGN.md "Dependency policy").
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline --workspace

# The parallel-FPRAS contract: estimates are bit-identical for a fixed
# seed at any thread count. Run the determinism suite at both ends of the
# env knob to prove the override path as well as the invariance — and once
# more with event logging fully on, to prove observability never perturbs
# an estimate (the pqe-obs contract).
PQE_THREADS=1 cargo test -q --offline --test determinism
PQE_THREADS=4 cargo test -q --offline --test determinism
PQE_LOG=debug cargo test -q --offline --test determinism

# The inner-loop contract: the fixed-width/arena fast path is
# bit-identical to the historical BigUint-only arithmetic. Run the
# differential equivalence suite both ways, then the golden-digit suite
# with the escape hatch forced — if the fast path ever drifts, the
# pinned digits in tests/determinism.rs differ and this fails.
cargo test -q --offline --test equivalence
PQE_SLOW_PATH=1 cargo test -q --offline --test determinism

# Bench smoke mode: the fpras thread-scaling bench must run end to end
# and emit its JSON artifact (the file re-committed as BENCH_fpras.json).
echo "bench smoke test:"
BENCH_DIR=$(mktemp -d)
PQE_BENCH_SAMPLES=1 PQE_BENCH_MIN_SAMPLE_MS=1 PQE_BENCH_JSON_DIR="$BENCH_DIR" \
    cargo bench -q --offline -p pqe-bench --bench thread_scaling > /dev/null
test -s "$BENCH_DIR/BENCH_fpras.json" || {
    echo "  FAIL: bench smoke run emitted no BENCH_fpras.json" >&2; exit 1; }
grep -q '"suite":"fpras"' "$BENCH_DIR/BENCH_fpras.json"
grep -q 'e7_fpras_threads/1' "$BENCH_DIR/BENCH_fpras.json"
rm -rf "$BENCH_DIR"
echo "  ok: thread_scaling smoke run emitted BENCH_fpras.json"

# Serve smoke test, fully offline: a release server on an ephemeral port,
# one NDJSON session (classify + estimate + stats + shutdown) over bash's
# /dev/tcp, and a clean exit.
# Profile smoke test: the span tree renders with non-zero totals and the
# compile/execute split, and the estimate line itself is unaffected.
echo "profile smoke test:"
PROFILE_DIR=$(mktemp -d)
# Five facts (two R3 rows) so the automaton has genuinely ambiguous
# unions: the sample counters stay zero on smaller instances.
printf '1/2 R1(a,b)\n1/3 R2(b,c)\n2/3 R2(b,d)\n1/5 R3(c,e)\n3/4 R3(d,e)\n' > "$PROFILE_DIR/smoke.pdb"
profile_out=$(./target/release/pqe estimate --db "$PROFILE_DIR/smoke.pdb" \
    --query 'R1(x,y), R2(y,z), R3(z,w)' --method fpras --seed 7 --profile)
rm -rf "$PROFILE_DIR"
echo "$profile_out" | grep -q 'Pr(Q) ≈'
echo "$profile_out" | grep -q -- '--- profile: phase totals'
echo "$profile_out" | grep -q '^estimate .* 100\.0%'
echo "$profile_out" | grep -q '  compile '
echo "$profile_out" | grep -q '  execute '
echo "$profile_out" | grep -q 'fpras.samples'
# Non-zero root total: the rendered line must not read "0ns".
echo "$profile_out" | grep '^estimate ' | grep -qv ' 0ns ' || {
    echo "  FAIL: profile root total is zero" >&2; exit 1; }
echo "  ok: --profile renders the span tree with non-zero totals"

# Router + conditional smoke: the route line is printed, ground evidence
# conditions exactly, impossible evidence is a structured exit-2 error,
# and a typo'd method gets the hint instead of silent auto-routing.
echo "router/evidence smoke test:"
COND_DIR=$(mktemp -d)
printf '1/2 R(a,b)\n1/3 S(b,c)\n1/5 S(b,d)\n' > "$COND_DIR/cond.pdb"
cond_out=$(./target/release/pqe estimate --db "$COND_DIR/cond.pdb" \
    --query 'R(x,y), S(y,z)' 2>/dev/null)
echo "$cond_out" | grep -q 'route    : lifted \[auto: safe'
cond_out=$(./target/release/pqe estimate --db "$COND_DIR/cond.pdb" \
    --query 'R(x,y), S(y,z)' --evidence "S('b','c')" 2>/dev/null)
echo "$cond_out" | grep -q 'Pr(Q|E) = 1/2'
echo "$cond_out" | grep -q 'route(E) : exact product (ground evidence)'
if ./target/release/pqe estimate --db "$COND_DIR/cond.pdb" \
    --query 'R(x,y), S(y,z)' --evidence "S('zz','zz')" 2> "$COND_DIR/err"; then
    echo "  FAIL: impossible evidence did not fail" >&2; exit 1
fi
grep -q 'P(E) = 0' "$COND_DIR/err"
if ./target/release/pqe estimate --db "$COND_DIR/cond.pdb" \
    --query 'R(x,y), S(y,z)' --method fprs 2> "$COND_DIR/err"; then
    echo "  FAIL: unknown method was accepted" >&2; exit 1
fi
grep -q 'did you mean "fpras"' "$COND_DIR/err"
rm -rf "$COND_DIR"
echo "  ok: route line, ground P(Q|E), zero-evidence error, method hint"

echo "serve smoke test:"
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
printf '1/2 R1(a,b)\n1/3 R2(b,c)\n2/3 R2(b,d)\n1/5 R3(c,e)\n' > "$SMOKE_DIR/smoke.pdb"
./target/release/pqe serve --db "$SMOKE_DIR/smoke.pdb" --addr 127.0.0.1:0 \
    > "$SMOKE_DIR/serve.log" &
SERVE_PID=$!
addr=""
for _ in $(seq 1 200); do
    addr=$(sed -n 's/^pqe-serve listening on //p' "$SMOKE_DIR/serve.log")
    [ -n "$addr" ] && break
    sleep 0.05
done
if [ -z "$addr" ]; then
    echo "  FAIL: server never announced its address" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
port=${addr##*:}
exec 3<>"/dev/tcp/127.0.0.1/$port"
send() { printf '%s\n' "$1" >&3; IFS= read -r resp <&3; }
send '{"op":"classify","query":"R1(x,y), R2(y,z), R3(z,w)"}'
echo "$resp" | grep -q '"verdict":"fpras-only"'
send '{"op":"estimate","query":"R1(x,y), R2(y,z), R3(z,w)","method":"fpras","epsilon":0.3,"seed":7}'
echo "$resp" | grep -q '"ok":true'
echo "$resp" | grep -q '"probability":"0\.'
echo "$resp" | grep -q '"route":"fpras"'
# Evidence round-trip: ground evidence on the served instance reports the
# exact P(E) and both routes.
send "{\"op\":\"estimate\",\"query\":\"R1(x,y), R2(y,z), R3(z,w)\",\"evidence\":\"R1('a','b')\",\"epsilon\":0.3,\"seed\":7}"
echo "$resp" | grep -q '"ok":true'
echo "$resp" | grep -q '"p_evidence":"0\.500000"'
echo "$resp" | grep -q '"evidence_route":"exact-product"'
# Unknown method: structured bad_request with the hint, not silent auto.
send '{"op":"estimate","query":"R1(x,y)","method":"fprs"}'
echo "$resp" | grep -q '"error":"bad_request"'
echo "$resp" | grep -q 'did you mean'
send '{"op":"stats"}'
echo "$resp" | grep -q '"estimates":2'
echo "$resp" | grep -q '"classifies":1'
send '{"op":"shutdown"}'
echo "$resp" | grep -q '"ok":true'
exec 3>&- 3<&-
wait "$SERVE_PID"
echo "  ok: classify/estimate/stats/shutdown round-tripped, clean exit"

# Concurrency smoke: the multiplexed server handles 4 simultaneous
# connections (distinct seeds — no single-flight sharing), still offline
# over bash's /dev/tcp.
echo "serve concurrency smoke test:"
./target/release/pqe serve --db "$SMOKE_DIR/smoke.pdb" --addr 127.0.0.1:0 \
    --workers 4 > "$SMOKE_DIR/serve2.log" &
SERVE_PID=$!
addr=""
for _ in $(seq 1 200); do
    addr=$(sed -n 's/^pqe-serve listening on //p' "$SMOKE_DIR/serve2.log")
    [ -n "$addr" ] && break
    sleep 0.05
done
[ -n "$addr" ] || { echo "  FAIL: no announce" >&2; kill "$SERVE_PID"; exit 1; }
port=${addr##*:}
for fd in 4 5 6 7; do
    eval "exec $fd<>'/dev/tcp/127.0.0.1/$port'"
    printf '{"op":"estimate","query":"R1(x,y), R2(y,z), R3(z,w)","method":"fpras","epsilon":0.3,"seed":%d}\n' "$fd" >&"$fd"
done
for fd in 4 5 6 7; do
    IFS= read -r resp <&"$fd"
    echo "$resp" | grep -q '"ok":true' || {
        echo "  FAIL: concurrent request on fd $fd failed: $resp" >&2; exit 1; }
    eval "exec $fd>&- $fd<&-"
done
exec 3<>"/dev/tcp/127.0.0.1/$port"
send '{"op":"stats"}'
echo "$resp" | grep -q '"estimates":4'
send '{"op":"shutdown"}'
exec 3>&- 3<&-
wait "$SERVE_PID"
echo "  ok: 4 concurrent connections served, clean exit"

# Backpressure smoke: one worker, queue depth 1 — a third concurrent
# request must be rejected with a structured overloaded error.
echo "serve overload smoke test:"
./target/release/pqe serve --db "$SMOKE_DIR/smoke.pdb" --addr 127.0.0.1:0 \
    --workers 1 --queue-depth 1 > "$SMOKE_DIR/serve3.log" &
SERVE_PID=$!
addr=""
for _ in $(seq 1 200); do
    addr=$(sed -n 's/^pqe-serve listening on //p' "$SMOKE_DIR/serve3.log")
    [ -n "$addr" ] && break
    sleep 0.05
done
[ -n "$addr" ] || { echo "  FAIL: no announce" >&2; kill "$SERVE_PID"; exit 1; }
port=${addr##*:}
exec 4<>"/dev/tcp/127.0.0.1/$port"
exec 5<>"/dev/tcp/127.0.0.1/$port"
exec 6<>"/dev/tcp/127.0.0.1/$port"
# Occupy the only worker, then the only queue slot (distinct seeds).
printf '{"op":"estimate","query":"R1(x,y), R2(y,z), R3(z,w)","method":"fpras","seed":1,"delay_ms":2000}\n' >&4
sleep 0.5
printf '{"op":"estimate","query":"R1(x,y), R2(y,z), R3(z,w)","method":"fpras","seed":2,"delay_ms":200}\n' >&5
sleep 0.3
printf '{"op":"estimate","query":"R1(x,y), R2(y,z), R3(z,w)","method":"fpras","seed":3}\n' >&6
IFS= read -r resp <&6
echo "$resp" | grep -q '"error":"overloaded"' || {
    echo "  FAIL: saturated queue did not reject: $resp" >&2; exit 1; }
IFS= read -r resp <&4
echo "$resp" | grep -q '"ok":true'
IFS= read -r resp <&5
echo "$resp" | grep -q '"ok":true'
printf '{"op":"shutdown"}\n' >&6
IFS= read -r resp <&6
exec 4>&- 4<&- 5>&- 5<&- 6>&- 6<&-
wait "$SERVE_PID"
echo "  ok: full queue rejected with structured overloaded error"

# bench-serve smoke: the concurrency axis lands in BENCH_serve.json.
echo "bench-serve smoke test:"
BENCH_DIR=$(mktemp -d)
PQE_BENCH_JSON_DIR="$BENCH_DIR" ./target/release/pqe bench-serve \
    --requests 8 --epsilon 0.3 --method fpras > /dev/null
test -s "$BENCH_DIR/BENCH_serve.json" || {
    echo "  FAIL: bench-serve emitted no BENCH_serve.json" >&2; exit 1; }
grep -q '"c1.throughput_rps"' "$BENCH_DIR/BENCH_serve.json"
grep -q '"c16.throughput_rps"' "$BENCH_DIR/BENCH_serve.json"
grep -q '"c64.throughput_rps"' "$BENCH_DIR/BENCH_serve.json"
grep -q '"c16.hit_p99_us"' "$BENCH_DIR/BENCH_serve.json"
rm -rf "$BENCH_DIR"
echo "  ok: bench-serve swept the 1/4/16/64 concurrency axis"

# Graph smoke: both routes on the diamond graph with pinned digits (the
# enum answer is exact; the FPRAS digits are seed-pinned and must be
# bit-identical across builds and thread counts), plus the DOT dump.
echo "graph smoke test:"
GRAPH_DIR=$(mktemp -d)
printf '1/2 a -r-> b\n1/2 a -r-> c\n1/2 b -r-> d\n1/2 c -r-> d\n' > "$GRAPH_DIR/diamond.graph"
graph_out=$(./target/release/pqe graph-estimate --graph "$GRAPH_DIR/diamond.graph" \
    --rpq 'a -> r r -> d' 2>/dev/null)
echo "$graph_out" | grep -q 'Pr(a -> r.r -> d) = 7/16 ≈ 0.437500'
echo "$graph_out" | grep -q 'route    : enum \[auto: 4 edges <= 16'
graph_out=$(./target/release/pqe graph-estimate --graph "$GRAPH_DIR/diamond.graph" \
    --rpq 'a -> r r -> d' --method fpras --epsilon 0.2 --seed 7 \
    --dump-automaton "$GRAPH_DIR/product.dot" 2>/dev/null)
echo "$graph_out" | grep -q 'Pr(a -> r.r -> d) ≈ 0.441406'
echo "$graph_out" | grep -q 'route    : fpras \[forced by --method fpras\]'
cli_digits=$(echo "$graph_out" | sed -n 's/.*≈ \(0\.[0-9]*\).*/\1/p')
grep -q '^digraph nfa' "$GRAPH_DIR/product.dot"
grep -q 'doublecircle' "$GRAPH_DIR/product.dot"
# A cyclic graph past nothing: forced fpras must refuse with structure.
printf '1/2 a -r-> b\n1/2 b -r-> a\n' > "$GRAPH_DIR/cycle.graph"
if ./target/release/pqe graph-estimate --graph "$GRAPH_DIR/cycle.graph" \
    --rpq 'a -> r* -> b' --method fpras 2> "$GRAPH_DIR/err"; then
    echo "  FAIL: cyclic graph accepted on the fpras route" >&2; exit 1
fi
grep -qi 'cyclic' "$GRAPH_DIR/err"
echo "  ok: enum 7/16, fpras pinned digits, DOT dump, cyclic refusal"

# Serve graph round-trip: the served estimate must be byte-identical to
# the CLI digits for the same (rpq, ε, seed).
echo "serve graph smoke test:"
./target/release/pqe serve --db "$SMOKE_DIR/smoke.pdb" \
    --graph "$GRAPH_DIR/diamond.graph" --addr 127.0.0.1:0 \
    > "$SMOKE_DIR/serve4.log" &
SERVE_PID=$!
addr=""
for _ in $(seq 1 200); do
    addr=$(sed -n 's/^pqe-serve listening on //p' "$SMOKE_DIR/serve4.log")
    [ -n "$addr" ] && break
    sleep 0.05
done
[ -n "$addr" ] || { echo "  FAIL: no announce" >&2; kill "$SERVE_PID"; exit 1; }
port=${addr##*:}
exec 3<>"/dev/tcp/127.0.0.1/$port"
send '{"op":"graph_estimate","rpq":"a -> r r -> d"}'
echo "$resp" | grep -q '"ok":true'
echo "$resp" | grep -q '"route":"enum"'
echo "$resp" | grep -q '"exact":"7/16"'
send '{"op":"graph_estimate","rpq":"a -> r r -> d","method":"fpras","epsilon":0.2,"seed":7}'
echo "$resp" | grep -q '"route":"fpras"'
echo "$resp" | grep -q "\"probability\":\"$cli_digits\"" || {
    echo "  FAIL: served digits differ from CLI ($cli_digits): $resp" >&2; exit 1; }
send '{"op":"stats"}'
echo "$resp" | grep -q '"graph_estimates":2'
echo "$resp" | grep -q '"router.route.graph"'
send '{"op":"shutdown"}'
exec 3>&- 3<&-
wait "$SERVE_PID"
rm -rf "$GRAPH_DIR"
echo "  ok: serve graph_estimate byte-identical to CLI, stats counters"

# Graph bench smoke: truncated scale sweep, JSON artifact present (the
# full sweep to 1012 edges is the committed BENCH_graph.json).
echo "graph bench smoke test:"
BENCH_DIR=$(mktemp -d)
PQE_BENCH_SAMPLES=1 PQE_BENCH_MIN_SAMPLE_MS=1 PQE_BENCH_GRAPH_MAX_EDGES=30 \
    PQE_BENCH_JSON_DIR="$BENCH_DIR" \
    cargo bench -q --offline -p pqe-bench --bench graph_scaling > /dev/null
test -s "$BENCH_DIR/BENCH_graph.json" || {
    echo "  FAIL: bench smoke run emitted no BENCH_graph.json" >&2; exit 1; }
grep -q '"suite":"graph"' "$BENCH_DIR/BENCH_graph.json"
grep -q 'e15_enum/m4' "$BENCH_DIR/BENCH_graph.json"
grep -q 'e15_fpras_scale/m24' "$BENCH_DIR/BENCH_graph.json"
rm -rf "$BENCH_DIR"
echo "  ok: graph_scaling smoke run emitted BENCH_graph.json"

# Live-update smoke: apply-delta on the CLI, the `update` wire op, scoped
# invalidation (a plan over untouched relations keeps its cache entry),
# and — the core contract — the incrementally reweighted digits are
# byte-identical to a cold server started on the post-delta database.
echo "delta smoke test:"
DELTA_DIR=$(mktemp -d)
printf '1/2 R1(a,b)\n1/3 R2(b,c)\n2/3 R2(b,d)\n1/5 R3(c,e)\n' > "$DELTA_DIR/live.pdb"
printf '~ 2/5 R3(c,e)\n' > "$DELTA_DIR/batch.delta"
./target/release/pqe apply-delta --db "$DELTA_DIR/live.pdb" \
    --delta "$DELTA_DIR/batch.delta" --output "$DELTA_DIR/after.pdb" \
    > "$DELTA_DIR/apply.log"
grep -q 'applied 1 op(s): 0 inserted, 0 deleted, 1 reprobed' "$DELTA_DIR/apply.log"
grep -q 'probability-only' "$DELTA_DIR/apply.log"
grep -q '^2/5 R3(c,e)$' "$DELTA_DIR/after.pdb"

./target/release/pqe serve --db "$DELTA_DIR/live.pdb" --addr 127.0.0.1:0 \
    --workers 1 > "$DELTA_DIR/serve.log" &
SERVE_PID=$!
addr=""
for _ in $(seq 1 200); do
    addr=$(sed -n 's/^pqe-serve listening on //p' "$DELTA_DIR/serve.log")
    [ -n "$addr" ] && break
    sleep 0.05
done
[ -n "$addr" ] || { echo "  FAIL: no announce" >&2; kill "$SERVE_PID"; exit 1; }
port=${addr##*:}
exec 3<>"/dev/tcp/127.0.0.1/$port"
# Warm two plans: A touches R3 (FPRAS route), B does not (lifted route).
send '{"op":"estimate","query":"R1(x,y), R2(y,z), R3(z,w)","method":"fpras","epsilon":0.3,"seed":7}'
echo "$resp" | grep -q '"cache":"miss"'
send '{"op":"estimate","query":"R1(x,y), R2(y,z)","epsilon":0.3,"seed":7}'
echo "$resp" | grep -q '"cache":"miss"'
# Apply a probability-only delta to R3 over the wire.
send '{"op":"update","delta":"~ 2/5 R3(c,e)"}'
echo "$resp" | grep -q '"ok":true'
echo "$resp" | grep -q '"probability_only":true'
echo "$resp" | grep -q '"generation":1'
# B's relations are untouched: the plan AND its memoized answer survive.
send '{"op":"estimate","query":"R1(x,y), R2(y,z)","epsilon":0.3,"seed":7}'
echo "$resp" | grep -q '"cache":"hit"'
# A's plan is stale: reweighted in place, memo dropped, fresh digits.
send '{"op":"estimate","query":"R1(x,y), R2(y,z), R3(z,w)","method":"fpras","epsilon":0.3,"seed":7}'
echo "$resp" | grep -q '"cache":"invalidated"'
live_digits=$(echo "$resp" | sed -n 's/.*"probability":"\([0-9.]*\)".*/\1/p')
[ -n "$live_digits" ] || { echo "  FAIL: no probability in $resp" >&2; exit 1; }
send '{"op":"stats"}'
echo "$resp" | grep -q '"generation":1'
echo "$resp" | grep -q '"delta.applied":1'
echo "$resp" | grep -q '"delta.invalidated_plans":1'
echo "$resp" | grep -q '"R3":"s0p1"'
send '{"op":"shutdown"}'
exec 3>&- 3<&-
wait "$SERVE_PID"

# Cold replica: a fresh server on the apply-delta output must print the
# same digits for the same (query, ε, seed) — reweighting is exact.
./target/release/pqe serve --db "$DELTA_DIR/after.pdb" --addr 127.0.0.1:0 \
    --workers 1 > "$DELTA_DIR/serve2.log" &
SERVE_PID=$!
addr=""
for _ in $(seq 1 200); do
    addr=$(sed -n 's/^pqe-serve listening on //p' "$DELTA_DIR/serve2.log")
    [ -n "$addr" ] && break
    sleep 0.05
done
[ -n "$addr" ] || { echo "  FAIL: no announce" >&2; kill "$SERVE_PID"; exit 1; }
port=${addr##*:}
exec 3<>"/dev/tcp/127.0.0.1/$port"
send '{"op":"estimate","query":"R1(x,y), R2(y,z), R3(z,w)","method":"fpras","epsilon":0.3,"seed":7}'
echo "$resp" | grep -q "\"probability\":\"$live_digits\"" || {
    echo "  FAIL: cold digits differ from live ($live_digits): $resp" >&2; exit 1; }
# Atomicity: a batch whose second op is invalid must change nothing.
send '{"op":"update","delta":"~ 1/4 R1(a,b)\n- R1(zz,zz)"}'
echo "$resp" | grep -q '"error":"eval_error"'
send '{"op":"stats"}'
echo "$resp" | grep -q '"generation":0'
send '{"op":"shutdown"}'
exec 3>&- 3<&-
wait "$SERVE_PID"
rm -rf "$DELTA_DIR"
echo "  ok: apply-delta, scoped invalidation, live == cold digits, atomic reject"

# Delta bench smoke: the incremental-vs-cold replay must clear its 5x bar
# and agree bit for bit (both asserted inside the bench binary), and the
# JSON artifact (committed as BENCH_delta.json) must land.
echo "delta bench smoke test:"
BENCH_DIR=$(mktemp -d)
PQE_BENCH_JSON_DIR="$BENCH_DIR" \
    cargo bench -q --offline -p pqe-bench --bench delta_replay > /dev/null
test -s "$BENCH_DIR/BENCH_delta.json" || {
    echo "  FAIL: bench smoke run emitted no BENCH_delta.json" >&2; exit 1; }
grep -q '"suite":"delta"' "$BENCH_DIR/BENCH_delta.json"
grep -q '"name":"speedup"' "$BENCH_DIR/BENCH_delta.json"
grep -q '"name":"structural_recompiles"' "$BENCH_DIR/BENCH_delta.json"
rm -rf "$BENCH_DIR"
echo "  ok: delta_replay smoke run emitted BENCH_delta.json"
