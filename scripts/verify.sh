#!/usr/bin/env bash
# Tier-1 verification, hermetic by construction: --offline proves the
# workspace needs nothing from crates.io (all deps are in-tree path
# crates; see DESIGN.md "Dependency policy").
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline --workspace

# The parallel-FPRAS contract: estimates are bit-identical for a fixed
# seed at any thread count. Run the determinism suite at both ends of the
# env knob to prove the override path as well as the invariance.
PQE_THREADS=1 cargo test -q --offline --test determinism
PQE_THREADS=4 cargo test -q --offline --test determinism
