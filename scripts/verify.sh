#!/usr/bin/env bash
# Tier-1 verification, hermetic by construction: --offline proves the
# workspace needs nothing from crates.io (all deps are in-tree path
# crates; see DESIGN.md "Dependency policy").
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline --workspace
